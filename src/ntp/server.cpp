#include "ntp/server.h"

#include <algorithm>

namespace gorilla::ntp {

namespace {

/// NTP-era timestamp (seconds since 1900) for a SimTime; the 2013-11-01
/// simulation epoch is 3593548800 seconds into the NTP era.
constexpr std::uint64_t kNtpEraSimEpoch = 3593548800ULL;

std::uint64_t ntp_timestamp(util::SimTime t) {
  return (kNtpEraSimEpoch + static_cast<std::uint64_t>(t)) << 32;
}

void account(ResponseSummary& summary, const net::UdpPacket& pkt,
             std::uint64_t copies) {
  summary.total_packets += copies;
  summary.total_udp_payload_bytes += copies * pkt.payload.size();
  summary.total_on_wire_bytes += copies * pkt.on_wire_bytes();
}

}  // namespace

net::UdpPacket NtpServer::make_reply(const net::UdpPacket& request,
                                     std::vector<std::uint8_t> payload,
                                     util::SimTime now) const {
  net::UdpPacket reply;
  reply.src = config_.address;
  reply.dst = request.src;  // to the (possibly spoofed) source — reflection
  reply.src_port = net::kNtpPort;
  reply.dst_port = request.src_port;
  reply.ttl = config_.initial_ttl;
  reply.timestamp = now;
  reply.payload = std::move(payload);
  return reply;
}

ResponseSummary NtpServer::handle(const net::UdpPacket& request,
                                  util::SimTime now,
                                  std::size_t materialize_cap) {
  const auto mode = peek_mode(request.payload);
  if (!mode) return {};

  switch (*mode) {
    case Mode::kClient:
      monitor_.observe(request.src, request.src_port,
                       static_cast<std::uint8_t>(*mode),
                       peek_version(request.payload).value_or(4), now);
      return respond_time(request, now);
    case Mode::kPrivate: {
      const auto parsed = parse_mode7_packet(request.payload);
      if (!parsed || parsed->response) return {};
      return respond_monlist(request, *parsed, now, materialize_cap);
    }
    case Mode::kControl: {
      const auto parsed = parse_control_packet(request.payload);
      if (!parsed || parsed->response) return {};
      return respond_readvar(request, *parsed, now, materialize_cap);
    }
    default:
      // Symmetric/broadcast modes: monitored but unanswered in this model.
      monitor_.observe(request.src, request.src_port,
                       static_cast<std::uint8_t>(*mode),
                       peek_version(request.payload).value_or(4), now);
      return {};
  }
}

ResponseSummary NtpServer::respond_time(const net::UdpPacket& request,
                                        util::SimTime now) {
  const auto query = parse_time_packet(request.payload);
  TimePacket reply;
  reply.mode = Mode::kServer;
  reply.version = query ? query->version : 4;
  reply.stratum = static_cast<std::uint8_t>(config_.sysvars.stratum);
  reply.leap = config_.sysvars.stratum == kStratumUnsynchronized ? 3 : 0;
  reply.origin_ts = query ? query->transmit_ts : 0;
  reply.receive_ts = ntp_timestamp(now);
  reply.transmit_ts = ntp_timestamp(now);
  ResponseSummary summary;
  summary.packets.push_back(make_reply(request, serialize(reply), now));
  account(summary, summary.packets.back(), 1);
  return summary;
}

ResponseSummary NtpServer::respond_monlist(const net::UdpPacket& request,
                                           const Mode7Packet& parsed,
                                           util::SimTime now,
                                           std::size_t materialize_cap) {
  // Repeat count: a loop fault re-delivers the request, so the server
  // processes (and answers) it dumps times.
  const std::uint64_t dumps = std::uint64_t{config_.loop_repeat} + 1;
  monitor_.observe_many(request.src, request.src_port,
                        static_cast<std::uint8_t>(Mode::kPrivate),
                        kNtpVersion, dumps, now, now);

  if (!config_.monlist_enabled) return {};  // restrict noquery: silence

  if (!mode7_rate_allows(now)) {
    if (!config_.kod_on_rate_limit) return {};  // rate-limited: silence
    // Kiss-of-Death: stratum 0, refid "RATE".
    TimePacket kod;
    kod.mode = Mode::kServer;
    kod.stratum = 0;
    kod.leap = 3;
    kod.reference_id = 0x52415445;  // "RATE"
    ResponseSummary summary;
    summary.packets.push_back(make_reply(request, serialize(kod), now));
    account(summary, summary.packets.back(), 1);
    return summary;
  }

  ResponseSummary summary;
  if (parsed.implementation != config_.accepted_impl &&
      parsed.implementation != Implementation::kUniv) {
    // Wrong implementation number: a tiny error reply, no amplification.
    const auto err = make_mode7_error(Mode7Error::kImplMismatch,
                                      config_.accepted_impl, parsed.request);
    summary.packets.push_back(make_reply(request, serialize(err), now));
    account(summary, summary.packets.back(), 1);
    return summary;
  }
  if (parsed.request == RequestCode::kPeerList) {
    return respond_peer_list(request, now);
  }
  if (parsed.request != RequestCode::kMonGetList1 &&
      parsed.request != RequestCode::kMonGetList) {
    const auto err = make_mode7_error(Mode7Error::kReqUnknown,
                                      config_.accepted_impl, parsed.request);
    summary.packets.push_back(make_reply(request, serialize(err), now));
    account(summary, summary.packets.back(), 1);
    return summary;
  }

  // The final dump's table (all loop observations already recorded above);
  // intermediate dumps differ only in the probe entry's count, not in size,
  // so totals scale exactly. Old ntpd builds answer the legacy request
  // code with the compact 32-byte item layout.
  const auto entries = monitor_.dump(now, config_.address);
  const auto wire_packets =
      parsed.request == RequestCode::kMonGetList
          ? make_legacy_monlist_response(entries, config_.accepted_impl)
          : make_monlist_response(entries, config_.accepted_impl);

  std::vector<net::UdpPacket> one_dump;
  one_dump.reserve(wire_packets.size());
  std::uint64_t dump_udp = 0, dump_wire = 0;
  for (const auto& wp : wire_packets) {
    one_dump.push_back(make_reply(request, serialize(wp), now));
    dump_udp += one_dump.back().payload.size();
    dump_wire += one_dump.back().on_wire_bytes();
  }
  summary.total_packets = dumps * one_dump.size();
  summary.total_udp_payload_bytes = dumps * dump_udp;
  summary.total_on_wire_bytes = dumps * dump_wire;

  // Materialize the *final* dumps up to the cap so reassemble_monlist() sees
  // a faithful last run.
  const std::uint64_t dumps_to_emit =
      one_dump.empty()
          ? 0
          : std::min<std::uint64_t>(dumps,
                                    std::max<std::uint64_t>(
                                        1, materialize_cap / one_dump.size()));
  for (std::uint64_t d = 0; d < dumps_to_emit; ++d) {
    summary.packets.insert(summary.packets.end(), one_dump.begin(),
                           one_dump.end());
  }
  summary.truncated = summary.packets.size() < summary.total_packets;
  return summary;
}

bool NtpServer::mode7_rate_allows(util::SimTime now) {
  if (config_.mode7_responses_per_minute == 0) return true;
  if (now - rate_window_start_ >= 60) {
    rate_window_start_ = now - (now % 60);
    rate_window_used_ = 0;
  }
  if (rate_window_used_ >= config_.mode7_responses_per_minute) return false;
  ++rate_window_used_;
  return true;
}

ResponseSummary NtpServer::respond_peer_list(const net::UdpPacket& request,
                                             util::SimTime now) {
  ResponseSummary summary;
  const auto wire_packets =
      make_peer_list_response(config_.peers, config_.accepted_impl);
  for (const auto& wp : wire_packets) {
    summary.packets.push_back(make_reply(request, serialize(wp), now));
    account(summary, summary.packets.back(), 1);
  }
  return summary;
}

ResponseSummary NtpServer::respond_readvar(const net::UdpPacket& request,
                                           const ControlPacket& parsed,
                                           util::SimTime now,
                                           std::size_t materialize_cap) {
  const std::uint64_t sends = std::uint64_t{config_.loop_repeat} + 1;
  monitor_.observe_many(request.src, request.src_port,
                        static_cast<std::uint8_t>(Mode::kControl), kNtpVersion,
                        sends, now, now);

  if (!config_.mode6_enabled) return {};
  if (parsed.opcode != ControlOp::kReadVariables) return {};

  const auto fragments =
      make_readvar_response(config_.sysvars, parsed.sequence);
  std::vector<net::UdpPacket> one_send;
  std::uint64_t send_udp = 0, send_wire = 0;
  for (const auto& frag : fragments) {
    one_send.push_back(make_reply(request, serialize(frag), now));
    send_udp += one_send.back().payload.size();
    send_wire += one_send.back().on_wire_bytes();
  }
  ResponseSummary summary;
  summary.total_packets = sends * one_send.size();
  summary.total_udp_payload_bytes = sends * send_udp;
  summary.total_on_wire_bytes = sends * send_wire;
  const std::uint64_t sends_to_emit =
      one_send.empty()
          ? 0
          : std::min<std::uint64_t>(sends,
                                    std::max<std::uint64_t>(
                                        1, materialize_cap / one_send.size()));
  for (std::uint64_t s = 0; s < sends_to_emit; ++s) {
    summary.packets.insert(summary.packets.end(), one_send.begin(),
                           one_send.end());
  }
  summary.truncated = summary.packets.size() < summary.total_packets;
  return summary;
}

}  // namespace gorilla::ntp
