// NTP mode 6 (control) packets — the `version` / READVAR vector (§3.3).
//
// Wire format follows the ntpd control protocol: a 12-byte header
// (LI/VN/mode, R|E|M|opcode, sequence, status, association id, offset,
// count) followed by up to 468 data bytes, padded to a 4-byte boundary.
// A `version` probe is a READVAR request with no variable list; responders
// return their system variable list ("version=..., system=..., stratum=...")
// possibly across multiple fragments (M bit + offset).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "ntp/ntp_packet.h"

namespace gorilla::ntp {

/// Control opcodes (subset used by the study).
enum class ControlOp : std::uint8_t {
  kReadStatus = 1,
  kReadVariables = 2,  ///< READVAR — the "version" probe
};

inline constexpr std::size_t kControlHeaderBytes = 12;
inline constexpr std::size_t kControlMaxDataBytes = 468;

struct ControlPacket {
  std::uint8_t version = 2;  // ntpq sends VN=2
  bool response = false;     // R bit
  bool error = false;        // E bit
  bool more = false;         // M bit — further fragments follow
  ControlOp opcode = ControlOp::kReadVariables;
  std::uint16_t sequence = 0;
  std::uint16_t status = 0;
  std::uint16_t association_id = 0;  // 0 = the system itself
  std::uint16_t offset = 0;          // byte offset of this fragment's data
  std::vector<std::uint8_t> data;

  [[nodiscard]] std::size_t total_bytes() const noexcept {
    // Header + data padded to 4.
    return kControlHeaderBytes + (data.size() + 3) / 4 * 4;
  }
};

[[nodiscard]] std::vector<std::uint8_t> serialize(const ControlPacket& p);

/// Parses one control packet; nullopt if not mode 6, truncated, or the
/// declared count exceeds the buffer.
[[nodiscard]] std::optional<ControlPacket> parse_control_packet(
    std::span<const std::uint8_t> raw);

/// Builds the single-packet `version` probe (READVAR, no variables) —
/// byte-for-byte what the ONP scans send.
[[nodiscard]] ControlPacket make_version_request(std::uint16_t sequence = 1);

/// The system variable list an ntpd reports to READVAR.
struct SystemVariables {
  std::string version;  ///< e.g. "ntpd 4.2.6p5@1.2349-o Tue May 10 2011"
  std::string system;   ///< e.g. "Linux/2.6.32", "cisco", "JUNOS"
  std::string processor;
  int stratum = 2;
  int leap = 0;
  double rootdelay_ms = 0.0;
  double rootdisp_ms = 0.0;
  /// Additional daemon variables (refid, reftime, clock, jitter, ...) in
  /// render order. Full ntpd installs report a dozen of these; network
  /// devices are terser — which is where the spread of version-response
  /// sizes (and thus Figure 4c's BAF quartiles) comes from.
  std::vector<std::pair<std::string, std::string>> extras;

  /// Renders "key=value, key=value, ..." exactly as carried on the wire.
  [[nodiscard]] std::string render() const;
};

/// Parses a rendered variable list back into key/value pairs (tolerant of
/// quoting and whitespace, as ntpq is).
// Text-level splitter over an already-validated payload: garbage yields an
// empty map, there is no failure to signal.
[[nodiscard]] std::map<std::string, std::string> parse_variable_list(
    const std::string& text);

/// Splits a rendered variable list into response fragments (M bit/offset
/// chaining). Every response echoes the request sequence number.
[[nodiscard]] std::vector<ControlPacket> make_readvar_response(
    const SystemVariables& vars, std::uint16_t request_sequence);

/// Reassembles READVAR response fragments into the full text; fragments may
/// arrive out of order. Returns nullopt if a gap remains.
[[nodiscard]] std::optional<std::string> reassemble_readvar(
    std::span<const ControlPacket> fragments);

}  // namespace gorilla::ntp
