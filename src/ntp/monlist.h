// The ntpd monitor ("MRU") table behind the monlist command.
//
// ntpd records the most recent clients it has heard from, capped at 600
// entries with least-recently-seen recycling. Because attackers spoof the
// victim's address, the table doubles as an attack log — the insight §4
// ("Victimology") is built on. This module implements the table semantics;
// serialization to mode 7 items lives in mode7.h.
//
// Storage spine (DESIGN.md §3g): the §4 victimology analyses materialize
// one of these tables per detailed server — hundreds of thousands at
// --scale 40, millions at --scale 1 — so slots are packed 32-byte records
// in a dense chunked slab (one 8-slot head chunk, one 24-slot chunk, then
// 32-slot chunks) plus an open-addressing index, all drawn from an
// optional util::Arena (sim::World owns one arena for the whole
// population) with a private-heap fallback for standalone tables. Fixed
// chunk sizes mean every table draws from the same three arena size
// classes, so one table's post-restart shrink feeds any other table's
// attack-day growth byte for byte — the population's footprint tracks the
// *live* entry count, not the sum of per-table high-water marks, and a
// non-moving allocator has nothing to fragment. The slab stays dense by
// swap-remove, releases chunks when an expiry sweep empties them, and
// growth appends a chunk without ever copying slots.
//
// There is no recency list: dump() (weekly, per probed server) sorts its
// output, eviction (only when a table actually fills) scans for the
// minimum, and both reproduce the node-based implementation's ordering
// contract exactly. Slot times are stored as 32-bit sim-seconds — the
// simulation's clock fits comfortably ([0, 2^32) seconds is ~136 years).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "net/ipv4.h"
#include "ntp/mode7.h"
#include "util/arena.h"
#include "util/time.h"

namespace gorilla::ntp {

/// One live (in-server) monitor slot.
struct MonitorSlot {
  net::Ipv4Address address;
  std::uint16_t port = 0;
  std::uint8_t mode = 0;
  std::uint8_t version = 4;
  std::uint64_t count = 0;
  util::SimTime first_seen = 0;
  util::SimTime last_seen = 0;
};

/// One buffered observe_many() call — a day shard's unit of monitor-table
/// mutation. Worker threads record these instead of touching the table;
/// the calling thread applies them in day order during the ordered merge
/// (DESIGN.md §3d), so per-table LRU evolution matches the sequential
/// engine exactly.
struct MonitorObservation {
  net::Ipv4Address address;
  std::uint16_t port = 0;
  std::uint8_t mode = 0;
  std::uint8_t version = 4;
  std::uint64_t count = 0;
  util::SimTime first = 0;
  util::SimTime last = 0;
};

/// A day shard's ordered observation batch against one table.
using MonitorDelta = std::vector<MonitorObservation>;

/// The MRU monitor table. All mutation is via observe(); dumping produces
/// the wire-format entries, most-recently-seen first (ntpd dump order).
///
/// Recency semantics: eviction always removes the slot with the minimum
/// (last_seen, recency stamp) — the stamp advances whenever a slot's
/// last_seen is (re)set, so equal-last_seen ties recycle the slot whose
/// value is oldest to have been reached; dump() orders by last_seen
/// descending with ascending-address tie-break, exactly as the node-based
/// implementation did.
class MonitorTable {  // LINT-COMPACT
 public:
  /// A table drawing slab storage from `arena` (shared, outlives the
  /// table) — or from its own heap when null. A fresh table owns no
  /// storage at all until the first observe().
  explicit MonitorTable(std::size_t capacity = kMonlistMaxEntries,
                        util::Arena* arena = nullptr)
      : arena_(arena), capacity_(static_cast<std::uint32_t>(capacity)) {}

  MonitorTable(MonitorTable&& other) noexcept;
  MonitorTable& operator=(MonitorTable&& other) noexcept;
  MonitorTable(const MonitorTable&) = delete;
  MonitorTable& operator=(const MonitorTable&) = delete;
  ~MonitorTable();

  /// Records one packet from `address`. Existing entries update count,
  /// port/mode/version (last packet wins) and last_seen; new entries evict
  /// the least-recently-seen slot when the table is full.
  void observe(net::Ipv4Address address, std::uint16_t port, std::uint8_t mode,
               std::uint8_t version, util::SimTime now);

  /// Bulk variant: records `packet_count` packets evenly spread over
  /// [first, last]. Lets the attack model account for millions of spoofed
  /// packets without simulating each datagram (the count and interarrival
  /// arithmetic match packet-at-a-time observation).
  void observe_many(net::Ipv4Address address, std::uint16_t port,
                    std::uint8_t mode, std::uint8_t version,
                    std::uint64_t packet_count, util::SimTime first,
                    util::SimTime last);

  /// Applies one buffered observation — exactly observe_many() with the
  /// recorded arguments.
  void apply(const MonitorObservation& obs) {
    observe_many(obs.address, obs.port, obs.mode, obs.version, obs.count,
                 obs.first, obs.last);
  }

  /// Applies a day shard's batch in recorded order.
  void apply_delta(const MonitorDelta& delta) {
    for (const auto& obs : delta) apply(obs);
  }

  /// Renders wire entries as of `now`, most recent first. avg_interval is
  /// (last_seen - first_seen) / (count - 1) (0 when count <= 1); last_seen
  /// is seconds before `now`. Counts saturate at the field's 32-bit width --
  /// the >3e9 counts in the paper's Table 3b are exactly such saturated-ish
  /// giants, so we keep full 64-bit internally and clamp on serialization.
  [[nodiscard]] std::vector<MonitorEntry> dump(util::SimTime now,
                                               net::Ipv4Address local) const;

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

  /// Drops every slot last seen before `cutoff` — what an ntpd restart does
  /// to its monitor table (clients still active simply re-appear). The §4.2
  /// observation window exists because real servers restart regularly.
  /// Shrinks the slab back down the ladder when most of it empties.
  void expire_before(util::SimTime cutoff);

  /// The slot for an address, or nullopt (for tests/forensics).
  [[nodiscard]] std::optional<MonitorSlot> find(
      net::Ipv4Address address) const;

  /// Empties the table and returns every byte of storage.
  void clear();

  /// Bytes of slab + index storage this table currently claims (arena
  /// storage it holds, or private-heap bytes). Diagnostic for the memory
  /// spine.
  [[nodiscard]] std::size_t footprint_bytes() const noexcept;

 private:
  /// A packed slab slot. Times are 32-bit sim-seconds; `stamp` is the
  /// recency tie-break for eviction.
  struct Node {
    std::uint64_t count;
    std::uint32_t address;
    std::uint32_t first;
    std::uint32_t last;
    std::uint32_t stamp;
    std::uint16_t port;
    std::uint8_t mode;
    std::uint8_t version;
  };
  static_assert(sizeof(Node) == 32, "slot layout is part of the mem budget");

  static constexpr std::uint32_t kNil = 0xffffffffu;
  static constexpr std::uint32_t kHeadChunkSlots = 8;
  static constexpr std::uint32_t kSecondChunkSlots = 24;
  static constexpr std::uint32_t kChunkSlots = 32;
  static constexpr std::uint32_t kInitialIndexEntries = 16;

  /// Slots chunk `c` holds: 8, 24, 32, 32, ...
  [[nodiscard]] static constexpr std::uint32_t chunk_slots(
      std::uint32_t c) noexcept {
    return c == 0 ? kHeadChunkSlots : (c == 1 ? kSecondChunkSlots
                                              : kChunkSlots);
  }
  /// Chunks needed to hold `slots` dense slots.
  [[nodiscard]] static constexpr std::uint32_t chunks_for(
      std::uint32_t slots) noexcept {
    if (slots == 0) return 0;
    if (slots <= kHeadChunkSlots) return 1;
    if (slots <= kHeadChunkSlots + kSecondChunkSlots) return 2;
    const std::uint32_t rest = slots - kHeadChunkSlots - kSecondChunkSlots;
    return 2 + (rest + kChunkSlots - 1) / kChunkSlots;
  }
  /// Total slots `chunks` chunks hold.
  [[nodiscard]] static constexpr std::uint32_t chunk_capacity(
      std::uint32_t chunks) noexcept {
    if (chunks == 0) return 0;
    if (chunks == 1) return kHeadChunkSlots;
    return kHeadChunkSlots + kSecondChunkSlots + (chunks - 2) * kChunkSlots;
  }

  [[nodiscard]] Node& node(std::uint32_t i) noexcept;
  [[nodiscard]] const Node& node(std::uint32_t i) const noexcept;

  /// Smallest index entry count (power of two) keeping `entries` under
  /// the 3/4 load factor.
  [[nodiscard]] static std::uint32_t index_entries_for(
      std::uint32_t entries) noexcept;

  /// Ensures the slab can hold one more slot; appends a chunk (and grows
  /// the chunk directory) when full.
  void reserve_one();
  /// Removes the slot at slab position `at` (index entry already gone):
  /// the last slot swaps into the hole and its index entry is rewritten.
  void swap_remove(std::uint32_t at) noexcept;
  /// Releases now-empty tail chunks and over-sized index after an expiry
  /// sweep; releases everything when the table emptied.
  void shrink_to_fit();

  /// Index lookup: slab position for `key`, or kNil.
  [[nodiscard]] std::uint32_t lookup(std::uint32_t key) const noexcept;
  /// Inserts `slot_pos` under `key` (key must be absent), growing the
  /// index when its load factor crosses 3/4.
  void index_insert(std::uint32_t key, std::uint32_t slot_pos);
  /// Rewrites the slab position stored for existing `key`.
  void index_update(std::uint32_t key, std::uint32_t slot_pos) noexcept;
  /// Removes `key` with backward-shift deletion (no tombstones).
  void index_remove(std::uint32_t key) noexcept;
  /// Replaces the index with one of `entries` slots, reinserting all live
  /// keys. Recycles the old array.
  void rebuild_index(std::uint32_t entries);

  /// Array storage from the arena, or private heap when arena_ is null.
  template <typename T>
  [[nodiscard]] T* allocate_array(std::uint32_t count) {
    if (arena_ != nullptr) return arena_->allocate_array<T>(count);
    private_bytes_ += sizeof(T) * count;
    return new T[count]();
  }
  template <typename T>
  void release_array(T* ptr, std::uint32_t count) noexcept {
    if (ptr == nullptr) return;
    if (arena_ != nullptr) {
      arena_->recycle_array(ptr, count);
    } else {
      private_bytes_ -= sizeof(T) * count;
      delete[] ptr;
    }
  }

  /// Grows the chunk directory to hold at least `want` chunk pointers.
  void reserve_directory(std::uint32_t want);
  void release_all_storage() noexcept;

  util::Arena* arena_ = nullptr;
  std::uint32_t capacity_ = 0;
  std::uint32_t size_ = 0;        ///< live slots == dense slab prefix length
  std::uint32_t chunk_count_ = 0; ///< chunks currently allocated
  std::uint32_t dir_cap_ = 0;     ///< chunk pointers chunks_ can hold
  std::uint32_t stamp_ = 0;       ///< recency clock (bumped per last_seen set)
  Node** chunks_ = nullptr;         ///< chunk directory
  std::uint32_t* index_ = nullptr;  ///< open addressing, slab position + 1
  std::uint32_t index_mask_ = 0;    ///< entries - 1 (power of two)
  std::size_t private_bytes_ = 0;   ///< heap bytes when arena_ == nullptr
};

}  // namespace gorilla::ntp
