// The ntpd monitor ("MRU") table behind the monlist command.
//
// ntpd records the most recent clients it has heard from, capped at 600
// entries with least-recently-seen recycling. Because attackers spoof the
// victim's address, the table doubles as an attack log — the insight §4
// ("Victimology") is built on. This module implements the table semantics;
// serialization to mode 7 items lives in mode7.h.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "net/ipv4.h"
#include "ntp/mode7.h"
#include "util/time.h"

namespace gorilla::ntp {

/// One live (in-server) monitor slot.
struct MonitorSlot {
  net::Ipv4Address address;
  std::uint16_t port = 0;
  std::uint8_t mode = 0;
  std::uint8_t version = 4;
  std::uint64_t count = 0;
  util::SimTime first_seen = 0;
  util::SimTime last_seen = 0;
};

/// One buffered observe_many() call — a day shard's unit of monitor-table
/// mutation. Worker threads record these instead of touching the table;
/// the calling thread applies them in day order during the ordered merge
/// (DESIGN.md §3d), so per-table LRU evolution matches the sequential
/// engine exactly.
struct MonitorObservation {
  net::Ipv4Address address;
  std::uint16_t port = 0;
  std::uint8_t mode = 0;
  std::uint8_t version = 4;
  std::uint64_t count = 0;
  util::SimTime first = 0;
  util::SimTime last = 0;
};

/// A day shard's ordered observation batch against one table.
using MonitorDelta = std::vector<MonitorObservation>;

/// The MRU monitor table. All mutation is via observe(); dumping produces
/// the wire-format entries, most-recently-seen first (ntpd dump order).
class MonitorTable {
 public:
  explicit MonitorTable(std::size_t capacity = kMonlistMaxEntries)
      : capacity_(capacity) {}

  /// Records one packet from `address`. Existing entries update count,
  /// port/mode/version (last packet wins) and last_seen; new entries evict
  /// the least-recently-seen slot when the table is full.
  void observe(net::Ipv4Address address, std::uint16_t port, std::uint8_t mode,
               std::uint8_t version, util::SimTime now);

  /// Bulk variant: records `packet_count` packets evenly spread over
  /// [first, last]. Lets the attack model account for millions of spoofed
  /// packets without simulating each datagram (the count and interarrival
  /// arithmetic match packet-at-a-time observation).
  void observe_many(net::Ipv4Address address, std::uint16_t port,
                    std::uint8_t mode, std::uint8_t version,
                    std::uint64_t packet_count, util::SimTime first,
                    util::SimTime last);

  /// Applies one buffered observation — exactly observe_many() with the
  /// recorded arguments.
  void apply(const MonitorObservation& obs) {
    observe_many(obs.address, obs.port, obs.mode, obs.version, obs.count,
                 obs.first, obs.last);
  }

  /// Applies a day shard's batch in recorded order.
  void apply_delta(const MonitorDelta& delta) {
    for (const auto& obs : delta) apply(obs);
  }

  /// Renders wire entries as of `now`, most recent first. avg_interval is
  /// (last_seen - first_seen) / (count - 1) (0 when count <= 1); last_seen
  /// is seconds before `now`. Counts saturate at the field's 32-bit width --
  /// the >3e9 counts in the paper's Table 3b are exactly such saturated-ish
  /// giants, so we keep full 64-bit internally and clamp on serialization.
  [[nodiscard]] std::vector<MonitorEntry> dump(util::SimTime now,
                                               net::Ipv4Address local) const;

  [[nodiscard]] std::size_t size() const noexcept { return slots_.size(); }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

  /// Drops every slot last seen before `cutoff` — what an ntpd restart does
  /// to its monitor table (clients still active simply re-appear). The §4.2
  /// observation window exists because real servers restart regularly.
  void expire_before(util::SimTime cutoff);

  /// The slot for an address, or nullptr (for tests/forensics).
  [[nodiscard]] const MonitorSlot* find(net::Ipv4Address address) const;

  void clear();

 private:
  std::size_t capacity_;
  std::unordered_map<std::uint32_t, MonitorSlot> slots_;
};

}  // namespace gorilla::ntp
