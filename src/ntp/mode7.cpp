#include "ntp/mode7.h"

#include <algorithm>

#include "net/ethernet.h"
#include "util/bytes.h"

namespace gorilla::ntp {

std::vector<std::uint8_t> serialize(const Mode7Packet& p) {
  std::vector<std::uint8_t> out;
  out.reserve(kMode7HeaderBytes + p.data.size());
  util::ByteWriter w(out);
  // In mode 7 the top two bits are repurposed: R (response) and M (more).
  w.u8(static_cast<std::uint8_t>((p.response ? 0x80 : 0) |
                                 (p.more ? 0x40 : 0) |
                                 (kNtpVersion << 3) |
                                 static_cast<std::uint8_t>(Mode::kPrivate)));
  w.u8(static_cast<std::uint8_t>((p.auth ? 0x80 : 0) | (p.sequence & 0x7f)));
  w.u8(static_cast<std::uint8_t>(p.implementation));
  w.u8(static_cast<std::uint8_t>(p.request));
  w.u16be(static_cast<std::uint16_t>(
      (static_cast<std::uint16_t>(p.error) << 12) | (p.item_count & 0x0fff)));
  w.u16be(static_cast<std::uint16_t>(p.item_size & 0x0fff));
  w.bytes(p.data);
  return out;
}

std::optional<Mode7Packet> parse_mode7_packet(
    std::span<const std::uint8_t> raw) {
  util::ByteReader r(raw);
  const std::uint8_t b0 = r.u8();
  if (r.truncated() ||
      (b0 & 0x7) != static_cast<std::uint8_t>(Mode::kPrivate)) {
    return std::nullopt;
  }
  Mode7Packet p;
  p.response = b0 & 0x80;
  p.more = b0 & 0x40;
  const std::uint8_t b1 = r.u8();
  p.auth = b1 & 0x80;
  p.sequence = b1 & 0x7f;
  p.implementation = static_cast<Implementation>(r.u8());
  p.request = static_cast<RequestCode>(r.u8());
  const std::uint16_t err_nitems = r.u16be();
  p.error = static_cast<Mode7Error>(err_nitems >> 12);
  p.item_count = err_nitems & 0x0fff;
  p.item_size = r.u16be() & 0x0fff;
  if (!r.ok()) return std::nullopt;  // shorter than the 8-byte header
  const std::size_t declared =
      static_cast<std::size_t>(p.item_count) * p.item_size;
  // A header may lie in either direction: declare more data than the
  // datagram carries (truncated in flight, or a crafted over-read) or more
  // than the protocol's 500-byte data area allows. Reject both.
  if (declared > kMode7MaxDataBytes) return std::nullopt;
  const auto data = r.take(declared);
  if (!r.ok()) return std::nullopt;
  p.data.assign(data.begin(), data.end());
  return p;
}

Mode7Packet make_monlist_request(Implementation impl, bool authenticated) {
  Mode7Packet p;
  p.response = false;
  p.more = false;
  p.sequence = 0;
  p.auth = authenticated;
  p.implementation = impl;
  p.request = RequestCode::kMonGetList1;
  p.error = Mode7Error::kOk;
  p.item_count = 0;
  p.item_size = 0;
  // Zeroed data area: 40 bytes plain, or 40 + 144-byte auth tail for the
  // authenticated variant (total datagram 48 or 192 bytes).
  const std::size_t data_bytes =
      (authenticated ? kMode7AuthRequestBytes : kMode7RequestBytes) -
      kMode7HeaderBytes;
  p.data.assign(data_bytes, 0);
  return p;
}

namespace {

void encode_item(std::vector<std::uint8_t>& out, const MonitorEntry& e) {
  util::ByteWriter w(out);
  w.u32be(e.avg_interval);
  w.u32be(e.last_seen);
  w.u32be(e.restr);
  w.u32be(e.count);
  w.u32be(e.address.value());
  w.u32be(e.local_address.value());
  w.u32be(0);  // flags
  w.u16be(e.port);
  w.u8(e.mode);
  w.u8(e.version);
  w.u32be(0);     // v6_flag
  w.u32be(0);     // unused1 (alignment)
  w.fill(32, 0);  // addr6 + daddr6
}

MonitorEntry decode_item(std::span<const std::uint8_t> item) {
  util::ByteReader r(item);
  MonitorEntry e;
  e.avg_interval = r.u32be();
  e.last_seen = r.u32be();
  e.restr = r.u32be();
  e.count = r.u32be();
  e.address = net::Ipv4Address{r.u32be()};
  e.local_address = net::Ipv4Address{r.u32be()};
  r.skip(4);  // flags
  e.port = r.u16be();
  e.mode = r.u8();
  e.version = r.u8();
  return e;
}

}  // namespace

std::vector<Mode7Packet> make_monlist_response(
    std::span<const MonitorEntry> entries, Implementation impl) {
  std::vector<Mode7Packet> packets;
  const std::size_t n = std::min(entries.size(), kMonlistMaxEntries);
  const std::size_t num_packets =
      n == 0 ? 1 : (n + kMonitorItemsPerPacket - 1) / kMonitorItemsPerPacket;
  packets.reserve(num_packets);
  for (std::size_t pkt = 0; pkt < num_packets; ++pkt) {
    const std::size_t first = pkt * kMonitorItemsPerPacket;
    const std::size_t count =
        std::min(kMonitorItemsPerPacket, n - std::min(n, first));
    Mode7Packet p;
    p.response = true;
    p.more = pkt + 1 < num_packets;
    p.sequence = static_cast<std::uint8_t>(pkt & 0x7f);
    p.implementation = impl;
    p.request = RequestCode::kMonGetList1;
    p.error = n == 0 ? Mode7Error::kNoData : Mode7Error::kOk;
    p.item_count = static_cast<std::uint16_t>(count);
    p.item_size = kMonitorItemBytes;
    p.data.reserve(count * kMonitorItemBytes);
    for (std::size_t i = 0; i < count; ++i) {
      encode_item(p.data, entries[first + i]);
    }
    packets.push_back(std::move(p));
  }
  return packets;
}

namespace {

void encode_legacy_item(std::vector<std::uint8_t>& out,
                        const MonitorEntry& e) {
  // struct info_monitor (pre-_1): lasttime, firsttime, restr, count, addr,
  // mode+version packed, filler — 32 bytes.
  util::ByteWriter w(out);
  w.u32be(e.avg_interval);
  w.u32be(e.last_seen);
  w.u32be(e.restr);
  w.u32be(e.count);
  w.u32be(e.address.value());
  w.u8(e.mode);
  w.u8(e.version);
  w.u16be(0);  // filler
  w.u32be(0);  // v6_flag
  w.u32be(0);  // unused
}

}  // namespace

std::vector<Mode7Packet> make_legacy_monlist_response(
    std::span<const MonitorEntry> entries, Implementation impl) {
  std::vector<Mode7Packet> packets;
  const std::size_t n = std::min(entries.size(), kMonlistMaxEntries);
  const std::size_t per = kLegacyMonitorItemsPerPacket;
  const std::size_t num_packets = n == 0 ? 1 : (n + per - 1) / per;
  packets.reserve(num_packets);
  for (std::size_t pkt = 0; pkt < num_packets; ++pkt) {
    const std::size_t first = pkt * per;
    const std::size_t count = std::min(per, n - std::min(n, first));
    Mode7Packet p;
    p.response = true;
    p.more = pkt + 1 < num_packets;
    p.sequence = static_cast<std::uint8_t>(pkt & 0x7f);
    p.implementation = impl;
    p.request = RequestCode::kMonGetList;
    p.error = n == 0 ? Mode7Error::kNoData : Mode7Error::kOk;
    p.item_count = static_cast<std::uint16_t>(count);
    p.item_size = kLegacyMonitorItemBytes;
    p.data.reserve(count * kLegacyMonitorItemBytes);
    for (std::size_t i = 0; i < count; ++i) {
      encode_legacy_item(p.data, entries[first + i]);
    }
    packets.push_back(std::move(p));
  }
  return packets;
}

std::vector<MonitorEntry> decode_legacy_items(const Mode7Packet& p) {
  std::vector<MonitorEntry> entries;
  if (p.item_size != kLegacyMonitorItemBytes) return entries;
  // A hand-built packet can claim more items than its data holds; decode
  // only the items the payload actually carries.
  const std::size_t n = std::min<std::size_t>(
      p.item_count, p.data.size() / kLegacyMonitorItemBytes);
  entries.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto item = std::span<const std::uint8_t>(p.data).subspan(
        i * kLegacyMonitorItemBytes, kLegacyMonitorItemBytes);
    util::ByteReader r(item);
    MonitorEntry e;
    e.avg_interval = r.u32be();
    e.last_seen = r.u32be();
    e.restr = r.u32be();
    e.count = r.u32be();
    e.address = net::Ipv4Address{r.u32be()};
    e.mode = r.u8();
    e.version = r.u8();
    entries.push_back(e);
  }
  return entries;
}

Mode7Packet make_mode7_error(Mode7Error err, Implementation impl,
                             RequestCode request) {
  Mode7Packet p;
  p.response = true;
  p.implementation = impl;
  p.request = request;
  p.error = err;
  return p;
}

std::vector<MonitorEntry> decode_items(const Mode7Packet& p) {
  std::vector<MonitorEntry> entries;
  if (p.item_size != kMonitorItemBytes) return entries;
  // Decode only what the payload carries, whatever the header claims.
  const std::size_t n =
      std::min<std::size_t>(p.item_count, p.data.size() / kMonitorItemBytes);
  entries.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    entries.push_back(decode_item(
        std::span<const std::uint8_t>(p.data).subspan(i * kMonitorItemBytes,
                                                      kMonitorItemBytes)));
  }
  return entries;
}

std::uint64_t monlist_dump_packets(std::size_t entries) noexcept {
  const std::size_t n = std::min(entries, kMonlistMaxEntries);
  return n == 0 ? 1
                : (n + kMonitorItemsPerPacket - 1) / kMonitorItemsPerPacket;
}

std::uint64_t monlist_dump_udp_bytes(std::size_t entries) noexcept {
  const std::size_t n = std::min(entries, kMonlistMaxEntries);
  return monlist_dump_packets(n) * kMode7HeaderBytes + n * kMonitorItemBytes;
}

std::uint64_t monlist_dump_wire_bytes(std::size_t entries) noexcept {
  const std::size_t n = std::min(entries, kMonlistMaxEntries);
  if (n == 0) return net::on_wire_bytes_for_udp(kMode7HeaderBytes);
  std::uint64_t total = 0;
  const std::uint64_t full = n / kMonitorItemsPerPacket;
  total += full * net::on_wire_bytes_for_udp(
                      kMode7HeaderBytes +
                      kMonitorItemsPerPacket * kMonitorItemBytes);
  const std::size_t rem = n % kMonitorItemsPerPacket;
  if (rem != 0) {
    total += net::on_wire_bytes_for_udp(kMode7HeaderBytes +
                                        rem * kMonitorItemBytes);
  }
  return total;
}

Mode7Packet make_peer_list_request(Implementation impl) {
  Mode7Packet p = make_monlist_request(impl);
  p.request = RequestCode::kPeerList;
  return p;
}

namespace {

void encode_peer_item(std::vector<std::uint8_t>& out,
                      const PeerListEntry& e) {
  util::ByteWriter w(out);
  w.u32be(e.address.value());
  w.u16be(e.port);
  w.u8(e.hmode);
  w.u8(e.flags);
  w.u32be(0);     // v6_flag
  w.u32be(0);     // unused1
  w.fill(16, 0);  // addr6
}

}  // namespace

std::vector<Mode7Packet> make_peer_list_response(
    std::span<const PeerListEntry> peers, Implementation impl) {
  std::vector<Mode7Packet> packets;
  const std::size_t num_packets =
      peers.empty() ? 1
                    : (peers.size() + kPeerItemsPerPacket - 1) /
                          kPeerItemsPerPacket;
  for (std::size_t pkt = 0; pkt < num_packets; ++pkt) {
    const std::size_t first = pkt * kPeerItemsPerPacket;
    const std::size_t count = std::min(kPeerItemsPerPacket,
                                       peers.size() -
                                           std::min(peers.size(), first));
    Mode7Packet p;
    p.response = true;
    p.more = pkt + 1 < num_packets;
    p.sequence = static_cast<std::uint8_t>(pkt & 0x7f);
    p.implementation = impl;
    p.request = RequestCode::kPeerList;
    p.error = peers.empty() ? Mode7Error::kNoData : Mode7Error::kOk;
    p.item_count = static_cast<std::uint16_t>(count);
    p.item_size = kPeerListItemBytes;
    p.data.reserve(count * kPeerListItemBytes);
    for (std::size_t i = 0; i < count; ++i) {
      encode_peer_item(p.data, peers[first + i]);
    }
    packets.push_back(std::move(p));
  }
  return packets;
}

std::vector<PeerListEntry> decode_peer_items(const Mode7Packet& p) {
  std::vector<PeerListEntry> peers;
  if (p.item_size != kPeerListItemBytes) return peers;
  const std::size_t n =
      std::min<std::size_t>(p.item_count, p.data.size() / kPeerListItemBytes);
  for (std::size_t i = 0; i < n; ++i) {
    const auto item = std::span<const std::uint8_t>(p.data).subspan(
        i * kPeerListItemBytes, kPeerListItemBytes);
    util::ByteReader r(item);
    PeerListEntry e;
    e.address = net::Ipv4Address{r.u32be()};
    e.port = r.u16be();
    e.hmode = r.u8();
    e.flags = r.u8();
    peers.push_back(e);
  }
  return peers;
}

std::optional<std::vector<MonitorEntry>> reassemble_monlist(
    std::span<const Mode7Packet> packets) {
  // Keep only monlist responses; partition into runs at each sequence reset
  // (sequence <= previous), then decode the final complete run — matching
  // the paper's "use the final table received" rule for mega amplifiers.
  std::vector<const Mode7Packet*> responses;
  for (const auto& p : packets) {
    if (p.response && p.request == RequestCode::kMonGetList1 &&
        p.error == Mode7Error::kOk) {
      responses.push_back(&p);
    }
  }
  if (responses.empty()) return std::nullopt;
  std::size_t run_start = 0;
  for (std::size_t i = 1; i < responses.size(); ++i) {
    if (responses[i]->sequence <= responses[i - 1]->sequence) run_start = i;
  }
  std::vector<MonitorEntry> table;
  for (std::size_t i = run_start; i < responses.size(); ++i) {
    auto items = decode_items(*responses[i]);
    table.insert(table.end(), items.begin(), items.end());
  }
  // No real monitor table exceeds the 600-entry cap; a reassembly that does
  // is replayed/forged garbage. Keep the protocol invariant for consumers.
  if (table.size() > kMonlistMaxEntries) table.resize(kMonlistMaxEntries);
  return table;
}

}  // namespace gorilla::ntp
