#include "ntp/mode7.h"

#include <algorithm>

#include "net/packet.h"

namespace gorilla::ntp {

using net::get_u16;
using net::get_u32;
using net::put_u16;
using net::put_u32;

std::vector<std::uint8_t> serialize(const Mode7Packet& p) {
  std::vector<std::uint8_t> out;
  out.reserve(kMode7HeaderBytes + p.data.size());
  std::uint8_t b0 = make_li_vn_mode(0, kNtpVersion, Mode::kPrivate);
  // In mode 7 the top two bits are repurposed: R (response) and M (more).
  b0 = static_cast<std::uint8_t>((p.response ? 0x80 : 0) |
                                 (p.more ? 0x40 : 0) |
                                 (kNtpVersion << 3) |
                                 static_cast<std::uint8_t>(Mode::kPrivate));
  out.push_back(b0);
  out.push_back(static_cast<std::uint8_t>((p.auth ? 0x80 : 0) |
                                          (p.sequence & 0x7f)));
  out.push_back(static_cast<std::uint8_t>(p.implementation));
  out.push_back(static_cast<std::uint8_t>(p.request));
  put_u16(out, static_cast<std::uint16_t>(
                   (static_cast<std::uint16_t>(p.error) << 12) |
                   (p.item_count & 0x0fff)));
  put_u16(out, static_cast<std::uint16_t>(p.item_size & 0x0fff));
  out.insert(out.end(), p.data.begin(), p.data.end());
  return out;
}

std::optional<Mode7Packet> parse_mode7_packet(
    std::span<const std::uint8_t> raw) {
  if (raw.size() < kMode7HeaderBytes) return std::nullopt;
  if ((raw[0] & 0x7) != static_cast<std::uint8_t>(Mode::kPrivate))
    return std::nullopt;
  Mode7Packet p;
  p.response = raw[0] & 0x80;
  p.more = raw[0] & 0x40;
  p.auth = raw[1] & 0x80;
  p.sequence = raw[1] & 0x7f;
  p.implementation = static_cast<Implementation>(raw[2]);
  p.request = static_cast<RequestCode>(raw[3]);
  const std::uint16_t err_nitems = get_u16(raw, 4);
  p.error = static_cast<Mode7Error>(err_nitems >> 12);
  p.item_count = err_nitems & 0x0fff;
  p.item_size = get_u16(raw, 6) & 0x0fff;
  const std::size_t declared =
      static_cast<std::size_t>(p.item_count) * p.item_size;
  // A header may lie in either direction: declare more data than the
  // datagram carries (truncated in flight, or a crafted over-read) or more
  // than the protocol's 500-byte data area allows. Reject both.
  if (declared > kMode7MaxDataBytes) return std::nullopt;
  if (kMode7HeaderBytes + declared > raw.size()) return std::nullopt;
  p.data.assign(raw.begin() + kMode7HeaderBytes,
                raw.begin() + kMode7HeaderBytes + declared);
  return p;
}

Mode7Packet make_monlist_request(Implementation impl, bool authenticated) {
  Mode7Packet p;
  p.response = false;
  p.more = false;
  p.sequence = 0;
  p.auth = authenticated;
  p.implementation = impl;
  p.request = RequestCode::kMonGetList1;
  p.error = Mode7Error::kOk;
  p.item_count = 0;
  p.item_size = 0;
  // Zeroed data area: 40 bytes plain, or 40 + 144-byte auth tail for the
  // authenticated variant (total datagram 48 or 192 bytes).
  const std::size_t data_bytes =
      (authenticated ? kMode7AuthRequestBytes : kMode7RequestBytes) -
      kMode7HeaderBytes;
  p.data.assign(data_bytes, 0);
  return p;
}

namespace {

void encode_item(std::vector<std::uint8_t>& out, const MonitorEntry& e) {
  put_u32(out, e.avg_interval);
  put_u32(out, e.last_seen);
  put_u32(out, e.restr);
  put_u32(out, e.count);
  put_u32(out, e.address.value());
  put_u32(out, e.local_address.value());
  put_u32(out, 0);  // flags
  put_u16(out, e.port);
  out.push_back(e.mode);
  out.push_back(e.version);
  put_u32(out, 0);  // v6_flag
  put_u32(out, 0);  // unused1 (alignment)
  out.insert(out.end(), 32, 0);  // addr6 + daddr6
}

MonitorEntry decode_item(std::span<const std::uint8_t> item) {
  MonitorEntry e;
  e.avg_interval = get_u32(item, 0);
  e.last_seen = get_u32(item, 4);
  e.restr = get_u32(item, 8);
  e.count = get_u32(item, 12);
  e.address = net::Ipv4Address{get_u32(item, 16)};
  e.local_address = net::Ipv4Address{get_u32(item, 20)};
  e.port = get_u16(item, 28);
  e.mode = item[30];
  e.version = item[31];
  return e;
}

}  // namespace

std::vector<Mode7Packet> make_monlist_response(
    std::span<const MonitorEntry> entries, Implementation impl) {
  std::vector<Mode7Packet> packets;
  const std::size_t n = std::min(entries.size(), kMonlistMaxEntries);
  const std::size_t num_packets =
      n == 0 ? 1 : (n + kMonitorItemsPerPacket - 1) / kMonitorItemsPerPacket;
  packets.reserve(num_packets);
  for (std::size_t pkt = 0; pkt < num_packets; ++pkt) {
    const std::size_t first = pkt * kMonitorItemsPerPacket;
    const std::size_t count =
        std::min(kMonitorItemsPerPacket, n - std::min(n, first));
    Mode7Packet p;
    p.response = true;
    p.more = pkt + 1 < num_packets;
    p.sequence = static_cast<std::uint8_t>(pkt & 0x7f);
    p.implementation = impl;
    p.request = RequestCode::kMonGetList1;
    p.error = n == 0 ? Mode7Error::kNoData : Mode7Error::kOk;
    p.item_count = static_cast<std::uint16_t>(count);
    p.item_size = kMonitorItemBytes;
    p.data.reserve(count * kMonitorItemBytes);
    for (std::size_t i = 0; i < count; ++i) {
      encode_item(p.data, entries[first + i]);
    }
    packets.push_back(std::move(p));
  }
  return packets;
}

namespace {

void encode_legacy_item(std::vector<std::uint8_t>& out,
                        const MonitorEntry& e) {
  // struct info_monitor (pre-_1): lasttime, firsttime, restr, count, addr,
  // mode+version packed, filler — 32 bytes.
  put_u32(out, e.avg_interval);
  put_u32(out, e.last_seen);
  put_u32(out, e.restr);
  put_u32(out, e.count);
  put_u32(out, e.address.value());
  out.push_back(e.mode);
  out.push_back(e.version);
  put_u16(out, 0);               // filler
  put_u32(out, 0);               // v6_flag
  put_u32(out, 0);               // unused
}

}  // namespace

std::vector<Mode7Packet> make_legacy_monlist_response(
    std::span<const MonitorEntry> entries, Implementation impl) {
  std::vector<Mode7Packet> packets;
  const std::size_t n = std::min(entries.size(), kMonlistMaxEntries);
  const std::size_t per = kLegacyMonitorItemsPerPacket;
  const std::size_t num_packets = n == 0 ? 1 : (n + per - 1) / per;
  packets.reserve(num_packets);
  for (std::size_t pkt = 0; pkt < num_packets; ++pkt) {
    const std::size_t first = pkt * per;
    const std::size_t count = std::min(per, n - std::min(n, first));
    Mode7Packet p;
    p.response = true;
    p.more = pkt + 1 < num_packets;
    p.sequence = static_cast<std::uint8_t>(pkt & 0x7f);
    p.implementation = impl;
    p.request = RequestCode::kMonGetList;
    p.error = n == 0 ? Mode7Error::kNoData : Mode7Error::kOk;
    p.item_count = static_cast<std::uint16_t>(count);
    p.item_size = kLegacyMonitorItemBytes;
    p.data.reserve(count * kLegacyMonitorItemBytes);
    for (std::size_t i = 0; i < count; ++i) {
      encode_legacy_item(p.data, entries[first + i]);
    }
    packets.push_back(std::move(p));
  }
  return packets;
}

std::vector<MonitorEntry> decode_legacy_items(const Mode7Packet& p) {
  std::vector<MonitorEntry> entries;
  if (p.item_size != kLegacyMonitorItemBytes) return entries;
  // A hand-built packet can claim more items than its data holds; decode
  // only the items the payload actually carries.
  const std::size_t n = std::min<std::size_t>(
      p.item_count, p.data.size() / kLegacyMonitorItemBytes);
  entries.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto item = std::span<const std::uint8_t>(p.data).subspan(
        i * kLegacyMonitorItemBytes, kLegacyMonitorItemBytes);
    MonitorEntry e;
    e.avg_interval = get_u32(item, 0);
    e.last_seen = get_u32(item, 4);
    e.restr = get_u32(item, 8);
    e.count = get_u32(item, 12);
    e.address = net::Ipv4Address{get_u32(item, 16)};
    e.mode = item[20];
    e.version = item[21];
    entries.push_back(e);
  }
  return entries;
}

Mode7Packet make_mode7_error(Mode7Error err, Implementation impl,
                             RequestCode request) {
  Mode7Packet p;
  p.response = true;
  p.implementation = impl;
  p.request = request;
  p.error = err;
  return p;
}

std::vector<MonitorEntry> decode_items(const Mode7Packet& p) {
  std::vector<MonitorEntry> entries;
  if (p.item_size != kMonitorItemBytes) return entries;
  // Decode only what the payload carries, whatever the header claims.
  const std::size_t n =
      std::min<std::size_t>(p.item_count, p.data.size() / kMonitorItemBytes);
  entries.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    entries.push_back(decode_item(
        std::span<const std::uint8_t>(p.data).subspan(i * kMonitorItemBytes,
                                                      kMonitorItemBytes)));
  }
  return entries;
}

std::uint64_t monlist_dump_packets(std::size_t entries) noexcept {
  const std::size_t n = std::min(entries, kMonlistMaxEntries);
  return n == 0 ? 1
                : (n + kMonitorItemsPerPacket - 1) / kMonitorItemsPerPacket;
}

std::uint64_t monlist_dump_udp_bytes(std::size_t entries) noexcept {
  const std::size_t n = std::min(entries, kMonlistMaxEntries);
  return monlist_dump_packets(n) * kMode7HeaderBytes + n * kMonitorItemBytes;
}

std::uint64_t monlist_dump_wire_bytes(std::size_t entries) noexcept {
  const std::size_t n = std::min(entries, kMonlistMaxEntries);
  if (n == 0) return net::on_wire_bytes_for_udp(kMode7HeaderBytes);
  std::uint64_t total = 0;
  const std::uint64_t full = n / kMonitorItemsPerPacket;
  total += full * net::on_wire_bytes_for_udp(
                      kMode7HeaderBytes +
                      kMonitorItemsPerPacket * kMonitorItemBytes);
  const std::size_t rem = n % kMonitorItemsPerPacket;
  if (rem != 0) {
    total += net::on_wire_bytes_for_udp(kMode7HeaderBytes +
                                        rem * kMonitorItemBytes);
  }
  return total;
}

Mode7Packet make_peer_list_request(Implementation impl) {
  Mode7Packet p = make_monlist_request(impl);
  p.request = RequestCode::kPeerList;
  return p;
}

namespace {

void encode_peer_item(std::vector<std::uint8_t>& out,
                      const PeerListEntry& e) {
  put_u32(out, e.address.value());
  put_u16(out, e.port);
  out.push_back(e.hmode);
  out.push_back(e.flags);
  put_u32(out, 0);               // v6_flag
  put_u32(out, 0);               // unused1
  out.insert(out.end(), 16, 0);  // addr6
}

}  // namespace

std::vector<Mode7Packet> make_peer_list_response(
    std::span<const PeerListEntry> peers, Implementation impl) {
  std::vector<Mode7Packet> packets;
  const std::size_t num_packets =
      peers.empty() ? 1
                    : (peers.size() + kPeerItemsPerPacket - 1) /
                          kPeerItemsPerPacket;
  for (std::size_t pkt = 0; pkt < num_packets; ++pkt) {
    const std::size_t first = pkt * kPeerItemsPerPacket;
    const std::size_t count = std::min(kPeerItemsPerPacket,
                                       peers.size() -
                                           std::min(peers.size(), first));
    Mode7Packet p;
    p.response = true;
    p.more = pkt + 1 < num_packets;
    p.sequence = static_cast<std::uint8_t>(pkt & 0x7f);
    p.implementation = impl;
    p.request = RequestCode::kPeerList;
    p.error = peers.empty() ? Mode7Error::kNoData : Mode7Error::kOk;
    p.item_count = static_cast<std::uint16_t>(count);
    p.item_size = kPeerListItemBytes;
    p.data.reserve(count * kPeerListItemBytes);
    for (std::size_t i = 0; i < count; ++i) {
      encode_peer_item(p.data, peers[first + i]);
    }
    packets.push_back(std::move(p));
  }
  return packets;
}

std::vector<PeerListEntry> decode_peer_items(const Mode7Packet& p) {
  std::vector<PeerListEntry> peers;
  if (p.item_size != kPeerListItemBytes) return peers;
  const std::size_t n =
      std::min<std::size_t>(p.item_count, p.data.size() / kPeerListItemBytes);
  for (std::size_t i = 0; i < n; ++i) {
    const auto item = std::span<const std::uint8_t>(p.data).subspan(
        i * kPeerListItemBytes, kPeerListItemBytes);
    PeerListEntry e;
    e.address = net::Ipv4Address{get_u32(item, 0)};
    e.port = get_u16(item, 4);
    e.hmode = item[6];
    e.flags = item[7];
    peers.push_back(e);
  }
  return peers;
}

std::optional<std::vector<MonitorEntry>> reassemble_monlist(
    std::span<const Mode7Packet> packets) {
  // Keep only monlist responses; partition into runs at each sequence reset
  // (sequence <= previous), then decode the final complete run — matching
  // the paper's "use the final table received" rule for mega amplifiers.
  std::vector<const Mode7Packet*> responses;
  for (const auto& p : packets) {
    if (p.response && p.request == RequestCode::kMonGetList1 &&
        p.error == Mode7Error::kOk) {
      responses.push_back(&p);
    }
  }
  if (responses.empty()) return std::nullopt;
  std::size_t run_start = 0;
  for (std::size_t i = 1; i < responses.size(); ++i) {
    if (responses[i]->sequence <= responses[i - 1]->sequence) run_start = i;
  }
  std::vector<MonitorEntry> table;
  for (std::size_t i = run_start; i < responses.size(); ++i) {
    auto items = decode_items(*responses[i]);
    table.insert(table.end(), items.begin(), items.end());
  }
  // No real monitor table exceeds the 600-entry cap; a reassembly that does
  // is replayed/forged garbage. Keep the protocol invariant for consumers.
  if (table.size() > kMonlistMaxEntries) table.resize(kMonlistMaxEntries);
  return table;
}

}  // namespace gorilla::ntp
