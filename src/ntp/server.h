// A simulated ntpd instance.
//
// Each server owns a monitor (MRU) table, an identity (system variables),
// and a restriction configuration. It answers:
//   - mode 3 client queries with a mode 4 time packet,
//   - mode 7 MON_GETLIST_1 with its monitor table (unless `noquery`),
//   - mode 6 READVAR with its system variable list.
// Two fault knobs model the paper's §3.4 mega amplifiers: a response-loop
// repeat count (routing/switching-loop analogue that re-triggers the whole
// dump) applied to mode 7 and mode 6 responses.
//
// Responses are returned as a summary carrying exact aggregate byte/packet
// totals plus a bounded materialized prefix-of-the-final-dumps, so a 136 GB
// mega reply never has to exist in memory while its totals stay exact.
#pragma once

#include <cstdint>
#include <vector>

#include "net/packet.h"
#include "ntp/mode6.h"
#include "ntp/mode7.h"
#include "ntp/monlist.h"
#include "ntp/ntp_packet.h"

namespace gorilla::ntp {

struct NtpServerConfig {
  net::Ipv4Address address;
  /// Implementation number this ntpd answers mode 7 queries for; requests
  /// carrying the other number get a tiny IMPL error — the scan blind spot
  /// discussed in §3's limitations.
  Implementation accepted_impl = Implementation::kXntpd;
  /// False once `restrict noquery` (or a filter) is in place: mode 7 dropped.
  bool monlist_enabled = true;
  /// False when mode 6 is also restricted.
  bool mode6_enabled = true;
  SystemVariables sysvars;
  /// Extra times the full response sequence repeats (0 = healthy). A value
  /// of n means the dump is sent n+1 times — the §3.4 loop fault.
  std::uint32_t loop_repeat = 0;
  /// Initial IP TTL for responses (by OS: 255 cisco, 128 windows, 64 unix).
  std::uint8_t initial_ttl = 64;
  /// Upstream peer associations reported to REQ_PEER_LIST (`showpeers`).
  std::vector<PeerListEntry> peers;
  /// Alternative mitigation to `noquery`: rate-limit mode 7 responses to at
  /// most this many per minute (0 = unlimited). Excess requests are still
  /// monitored but answered with silence — the "traffic rate limits" Merit
  /// deployed during the early attack weeks (§7.1).
  std::uint32_t mode7_responses_per_minute = 0;
  /// When rate-limited, send a Kiss-of-Death "RATE" packet (48 bytes,
  /// stratum 0) instead of pure silence — later ntpd's `limited kod`
  /// behaviour. Well-behaved clients back off; attackers ignore it, but a
  /// KoD is 48 bytes where a dump is kilobytes, so the amplification is
  /// gone either way.
  bool kod_on_rate_limit = false;
};

/// Exact accounting of one request's response, with bounded materialization.
struct ResponseSummary {
  /// Materialized response datagrams (the *final* dumps when looping, so
  /// reassembly of the last table run stays faithful). May be a subset.
  std::vector<net::UdpPacket> packets;
  std::uint64_t total_packets = 0;
  std::uint64_t total_udp_payload_bytes = 0;
  std::uint64_t total_on_wire_bytes = 0;
  /// True when `packets` holds fewer than total_packets datagrams.
  bool truncated = false;
};

class NtpServer {
 public:
  /// `monitor_arena` (optional) backs the monitor table's slab storage;
  /// sim::World passes one shared arena for the whole detailed population
  /// so hundreds of thousands of tables stay dense (DESIGN.md §3g).
  explicit NtpServer(NtpServerConfig config,
                     util::Arena* monitor_arena = nullptr)
      : config_(std::move(config)),
        monitor_(kMonlistMaxEntries, monitor_arena) {}

  /// Handles one datagram addressed to this server at time `now`. Every
  /// request — even a dropped one — is recorded in the monitor table, which
  /// is what turns amplifiers into attack witnesses.
  ResponseSummary handle(const net::UdpPacket& request, util::SimTime now,
                         std::size_t materialize_cap = 4096);

  [[nodiscard]] const NtpServerConfig& config() const noexcept {
    return config_;
  }
  [[nodiscard]] MonitorTable& monitor() noexcept { return monitor_; }
  [[nodiscard]] const MonitorTable& monitor() const noexcept {
    return monitor_;
  }

  /// Remediation hooks (§6): disable the amplification vectors.
  void set_monlist_enabled(bool enabled) noexcept {
    config_.monlist_enabled = enabled;
  }
  void set_mode6_enabled(bool enabled) noexcept {
    config_.mode6_enabled = enabled;
  }
  void set_loop_repeat(std::uint32_t repeat) noexcept {
    config_.loop_repeat = repeat;
  }
  void set_mode7_rate_limit(std::uint32_t responses_per_minute) noexcept {
    config_.mode7_responses_per_minute = responses_per_minute;
  }

 private:
  ResponseSummary respond_time(const net::UdpPacket& request,
                               util::SimTime now);
  ResponseSummary respond_monlist(const net::UdpPacket& request,
                                  const Mode7Packet& parsed, util::SimTime now,
                                  std::size_t materialize_cap);
  ResponseSummary respond_peer_list(const net::UdpPacket& request,
                                    util::SimTime now);
  /// Token-bucket check for the mode 7 rate limiter; true = may respond.
  bool mode7_rate_allows(util::SimTime now);
  ResponseSummary respond_readvar(const net::UdpPacket& request,
                                  const ControlPacket& parsed,
                                  util::SimTime now,
                                  std::size_t materialize_cap);

  net::UdpPacket make_reply(const net::UdpPacket& request,
                            std::vector<std::uint8_t> payload,
                            util::SimTime now) const;

  NtpServerConfig config_;
  MonitorTable monitor_;
  // Rate-limiter window state (minute bucket start + responses used).
  util::SimTime rate_window_start_ = 0;
  std::uint32_t rate_window_used_ = 0;
};

}  // namespace gorilla::ntp
