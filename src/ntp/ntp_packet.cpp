#include "ntp/ntp_packet.h"

#include "util/bytes.h"

namespace gorilla::ntp {

std::optional<Mode> peek_mode(std::span<const std::uint8_t> pkt) noexcept {
  const auto b0 = util::ByteReader(pkt).peek_u8();
  if (!b0) return std::nullopt;
  return static_cast<Mode>(*b0 & 0x7);
}

std::optional<std::uint8_t> peek_version(
    std::span<const std::uint8_t> pkt) noexcept {
  const auto b0 = util::ByteReader(pkt).peek_u8();
  if (!b0) return std::nullopt;
  return static_cast<std::uint8_t>((*b0 >> 3) & 0x7);
}

std::vector<std::uint8_t> serialize(const TimePacket& p) {
  std::vector<std::uint8_t> out;
  out.reserve(kTimePacketBytes);
  util::ByteWriter w(out);
  w.u8(make_li_vn_mode(p.leap, p.version, p.mode));
  w.u8(p.stratum);
  w.u8(static_cast<std::uint8_t>(p.poll));
  w.u8(static_cast<std::uint8_t>(p.precision));
  w.u32be(p.root_delay);
  w.u32be(p.root_dispersion);
  w.u32be(p.reference_id);
  w.u64be(p.reference_ts);
  w.u64be(p.origin_ts);
  w.u64be(p.receive_ts);
  w.u64be(p.transmit_ts);
  return out;
}

std::optional<TimePacket> parse_time_packet(std::span<const std::uint8_t> data) {
  util::ByteReader r(data);
  const std::uint8_t b0 = r.u8();
  const auto mode = static_cast<Mode>(b0 & 0x7);
  if (r.truncated() || mode == Mode::kControl || mode == Mode::kPrivate) {
    return std::nullopt;
  }
  TimePacket p;
  p.leap = (b0 >> 6) & 0x3;
  p.version = (b0 >> 3) & 0x7;
  p.mode = mode;
  p.stratum = r.u8();
  p.poll = static_cast<std::int8_t>(r.u8());
  p.precision = static_cast<std::int8_t>(r.u8());
  p.root_delay = r.u32be();
  p.root_dispersion = r.u32be();
  p.reference_id = r.u32be();
  p.reference_ts = r.u64be();
  p.origin_ts = r.u64be();
  p.receive_ts = r.u64be();
  p.transmit_ts = r.u64be();
  if (!r.ok()) return std::nullopt;  // shorter than the 48-byte layout
  return p;
}

}  // namespace gorilla::ntp
