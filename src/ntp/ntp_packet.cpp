#include "ntp/ntp_packet.h"

#include "net/packet.h"

namespace gorilla::ntp {

using net::get_u32;
using net::put_u32;

std::optional<Mode> peek_mode(std::span<const std::uint8_t> pkt) noexcept {
  if (pkt.empty()) return std::nullopt;
  return static_cast<Mode>(pkt[0] & 0x7);
}

std::optional<std::uint8_t> peek_version(
    std::span<const std::uint8_t> pkt) noexcept {
  if (pkt.empty()) return std::nullopt;
  return static_cast<std::uint8_t>((pkt[0] >> 3) & 0x7);
}

namespace {

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  put_u32(out, static_cast<std::uint32_t>(v >> 32));
  put_u32(out, static_cast<std::uint32_t>(v));
}

std::uint64_t get_u64(std::span<const std::uint8_t> in, std::size_t offset) {
  return (std::uint64_t{get_u32(in, offset)} << 32) | get_u32(in, offset + 4);
}

}  // namespace

std::vector<std::uint8_t> serialize(const TimePacket& p) {
  std::vector<std::uint8_t> out;
  out.reserve(kTimePacketBytes);
  out.push_back(make_li_vn_mode(p.leap, p.version, p.mode));
  out.push_back(p.stratum);
  out.push_back(static_cast<std::uint8_t>(p.poll));
  out.push_back(static_cast<std::uint8_t>(p.precision));
  put_u32(out, p.root_delay);
  put_u32(out, p.root_dispersion);
  put_u32(out, p.reference_id);
  put_u64(out, p.reference_ts);
  put_u64(out, p.origin_ts);
  put_u64(out, p.receive_ts);
  put_u64(out, p.transmit_ts);
  return out;
}

std::optional<TimePacket> parse_time_packet(std::span<const std::uint8_t> data) {
  if (data.size() < kTimePacketBytes) return std::nullopt;
  const auto mode = static_cast<Mode>(data[0] & 0x7);
  if (mode == Mode::kControl || mode == Mode::kPrivate) return std::nullopt;
  TimePacket p;
  p.leap = (data[0] >> 6) & 0x3;
  p.version = (data[0] >> 3) & 0x7;
  p.mode = mode;
  p.stratum = data[1];
  p.poll = static_cast<std::int8_t>(data[2]);
  p.precision = static_cast<std::int8_t>(data[3]);
  p.root_delay = get_u32(data, 4);
  p.root_dispersion = get_u32(data, 8);
  p.reference_id = get_u32(data, 12);
  p.reference_ts = get_u64(data, 16);
  p.origin_ts = get_u64(data, 24);
  p.receive_ts = get_u64(data, 32);
  p.transmit_ts = get_u64(data, 40);
  return p;
}

}  // namespace gorilla::ntp
