// An NTP client — the ordinary mode 3/4 exchange and offset arithmetic.
//
// The study is about servers being abused, but the reason those servers
// exist is time synchronization; §3.3's finding that 19% of them report
// stratum 16 (unsynchronized) matters because their *clients* get nothing
// useful. This client implements the RFC 5905 on-wire exchange: it builds
// mode 3 requests, validates mode 4 replies (origin-timestamp check, KoD /
// unsynchronized rejection), computes offset and round-trip delay from the
// four timestamps, and keeps the standard eight-sample clock filter that
// prefers minimum-delay samples.
#pragma once

#include <array>
#include <cstdint>
#include <optional>

#include "ntp/ntp_packet.h"
#include "util/time.h"

namespace gorilla::ntp {

/// Seconds between the NTP era (1900-01-01) and the simulation epoch
/// (2013-11-01); lets SimTime convert to on-wire 32.32 timestamps.
inline constexpr std::uint64_t kNtpEraAtSimEpoch = 3593548800ULL;

/// SimTime -> NTP 32.32 fixed-point timestamp (integer seconds).
[[nodiscard]] constexpr std::uint64_t to_ntp_timestamp(
    util::SimTime t) noexcept {
  return (kNtpEraAtSimEpoch + static_cast<std::uint64_t>(t)) << 32;
}

/// NTP 32.32 timestamp -> seconds (double) since the simulation epoch.
[[nodiscard]] constexpr double from_ntp_timestamp(std::uint64_t ts) noexcept {
  return static_cast<double>(ts >> 32) -
         static_cast<double>(kNtpEraAtSimEpoch) +
         static_cast<double>(ts & 0xffffffffu) / 4294967296.0;
}

/// One completed exchange: clock offset and round-trip delay (seconds).
struct ClockSample {
  double offset = 0.0;
  double delay = 0.0;
  util::SimTime local_time = 0;  ///< client clock when the reply arrived
  std::uint8_t stratum = 0;
};

/// Why a reply was rejected.
enum class ReplyError : std::uint8_t {
  kBogusOrigin,     ///< origin timestamp does not match our request
  kUnsynchronized,  ///< stratum 0/16 or leap=3 (the §3.3 pathology)
  kKissOfDeath,     ///< stratum-0 "RATE"/"DENY" kiss code: back off
  kNotServerMode,
};

/// The RATE kiss code ("please slow down").
inline constexpr std::uint32_t kKissRate = 0x52415445;
/// The DENY kiss code ("go away").
inline constexpr std::uint32_t kKissDeny = 0x44454e59;

class NtpClient {
 public:
  /// Builds the next mode 3 request stamped with the client's (possibly
  /// skewed) local clock.
  [[nodiscard]] TimePacket make_request(util::SimTime local_now);

  /// Processes a reply received at local time `local_recv`. On success
  /// returns the clock sample and records it in the filter.
  [[nodiscard]] std::optional<ClockSample> process_reply(
      const TimePacket& reply, util::SimTime local_recv);

  [[nodiscard]] std::optional<ReplyError> last_error() const noexcept {
    return last_error_;
  }

  /// The RFC 5905 clock filter: of the last eight valid samples, the one
  /// with minimum delay (nullopt until a sample exists).
  [[nodiscard]] std::optional<ClockSample> best_sample() const;

  [[nodiscard]] std::size_t samples_recorded() const noexcept {
    return count_;
  }

 private:
  std::uint64_t outstanding_origin_ = 0;  ///< transmit ts of last request
  std::array<ClockSample, 8> filter_{};
  std::size_t next_slot_ = 0;
  std::size_t count_ = 0;
  std::optional<ReplyError> last_error_;
};

}  // namespace gorilla::ntp
