// Population models for NTP server identity strings (§3.3, Table 2).
//
// The version-command census in the paper reports three distinct system-
// string distributions: the overall NTP population (cisco-dominated), the
// monlist amplifier pool (linux-dominated), and the mega-amplifier pool
// (linux/junos). It also reports that 19% of servers are unsynchronized
// (stratum 16) and that most version strings carry old compile years.
// This module samples server identities from those published distributions.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ntp/mode6.h"
#include "util/rng.h"

namespace gorilla::ntp {

/// Which published column of Table 2 to draw the system string from.
enum class SystemPool : std::uint8_t {
  kAllNtp,        ///< every version responder (cisco 48%, unix 31%, ...)
  kAllAmplifiers, ///< monlist amplifiers (linux 80%, bsd 11%, ...)
  kMega,          ///< mega amplifiers (linux 44%, junos 36%, ...)
  /// The non-amplifier remainder, derived so that mixing it with the
  /// amplifier pool at the amplifiers' population share reproduces the
  /// kAllNtp column: overwhelmingly network devices and classic unix.
  kNonAmplifier,
};

/// (system string, probability) rows of Table 2 for a pool.
[[nodiscard]] const std::vector<std::pair<std::string, double>>&
system_string_distribution(SystemPool pool);

/// Samples a system string from a pool's distribution.
[[nodiscard]] std::string sample_system_string(SystemPool pool,
                                               util::Rng& rng);

/// Samples an ntpd compile year matching §3.3: 13% before 2004, 23% before
/// 2010, 48% before 2011, 59% before 2012, 79% before 2013, rest 2013-14.
[[nodiscard]] int sample_compile_year(util::Rng& rng);

/// Samples a stratum: 19% stratum 16 (unsynchronized), else 1..6 with the
/// bulk at 2-3.
[[nodiscard]] int sample_stratum(util::Rng& rng);

/// Assembles the full READVAR variable set for a server identity.
[[nodiscard]] SystemVariables make_system_variables(const std::string& system,
                                                    int compile_year,
                                                    int stratum,
                                                    util::Rng& rng);

/// Extracts the four-digit compile year from a version string, or 0.
[[nodiscard]] int extract_compile_year(const std::string& version_string);

/// Normalizes a system string to the Table-2 OS label ("Linux/2.6.32" ->
/// "linux", "cisco IOS" -> "cisco").
[[nodiscard]] std::string normalize_os_label(const std::string& system);

}  // namespace gorilla::ntp
