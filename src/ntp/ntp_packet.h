// RFC 5905 NTP packet header (modes 3/4 — ordinary client/server time
// exchange) plus the mode numbering shared by all NTP packet families.
//
// Modes 6 (control) and 7 (private/implementation-specific) carry the
// commands this paper is about — `version` and `monlist` respectively — and
// live in mode6.h / mode7.h. This header owns the common first byte
// (LI/VN/mode) and the basic 48-byte time packet.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

namespace gorilla::ntp {

/// NTP association modes (RFC 5905 §3).
enum class Mode : std::uint8_t {
  kReserved = 0,
  kSymmetricActive = 1,
  kSymmetricPassive = 2,
  kClient = 3,
  kServer = 4,
  kBroadcast = 5,
  kControl = 6,   ///< mode 6: control (version/readvar live here)
  kPrivate = 7,   ///< mode 7: implementation-specific (monlist lives here)
};

inline constexpr std::uint8_t kNtpVersion = 2;  // ntpdc speaks VN=2 for mode 7

/// Stratum value meaning "unsynchronized" (§3.3: 19% of servers report it).
inline constexpr std::uint8_t kStratumUnsynchronized = 16;

/// Extracts the mode from any NTP packet's first byte; nullopt if empty.
[[nodiscard]] std::optional<Mode> peek_mode(std::span<const std::uint8_t> pkt)
    noexcept;

/// Extracts the version number (VN field) from the first byte.
[[nodiscard]] std::optional<std::uint8_t> peek_version(
    std::span<const std::uint8_t> pkt) noexcept;

/// Composes the LI/VN/mode first byte.
[[nodiscard]] constexpr std::uint8_t make_li_vn_mode(std::uint8_t li,
                                                     std::uint8_t vn,
                                                     Mode mode) noexcept {
  return static_cast<std::uint8_t>((li & 0x3) << 6 | (vn & 0x7) << 3 |
                                   (static_cast<std::uint8_t>(mode) & 0x7));
}

/// The 48-byte RFC 5905 time packet (modes 1..5). Timestamps are NTP-era
/// 32.32 fixed point; we carry only the integer seconds for simulation.
struct TimePacket {
  std::uint8_t leap = 0;
  std::uint8_t version = 4;
  Mode mode = Mode::kClient;
  std::uint8_t stratum = 0;
  std::int8_t poll = 6;
  std::int8_t precision = -20;
  std::uint32_t root_delay = 0;
  std::uint32_t root_dispersion = 0;
  std::uint32_t reference_id = 0;
  std::uint64_t reference_ts = 0;
  std::uint64_t origin_ts = 0;
  std::uint64_t receive_ts = 0;
  std::uint64_t transmit_ts = 0;
};

inline constexpr std::size_t kTimePacketBytes = 48;

[[nodiscard]] std::vector<std::uint8_t> serialize(const TimePacket& p);

/// Parses a 48-byte time packet; nullopt on short input or control/private
/// modes (those belong to mode6/mode7 parsers).
[[nodiscard]] std::optional<TimePacket> parse_time_packet(
    std::span<const std::uint8_t> data);

}  // namespace gorilla::ntp
