// 95th-percentile transit billing — §7.1's cost-of-attack estimate.
//
// Merit bills upstream transit on the standard 95th-percentile model: the
// month's 5-minute rate samples are sorted, the top 5% discarded, and the
// next-highest sample is the billed rate. The paper estimates that NTP
// attack traffic added over 2% to Merit's billed volume; this module lets
// the regional bench compute billed rate with and without the attack
// overlay and report the delta.
#pragma once

#include <cstdint>
#include <vector>

#include "telemetry/flow.h"

namespace gorilla::telemetry {

struct BillingResult {
  double billed_bps = 0.0;          ///< 95th percentile of 5-min samples
  double peak_bps = 0.0;
  double mean_bps = 0.0;
  std::size_t samples = 0;
};

/// Computes the 95th-percentile billed rate from a 5-minute volume series.
/// `percentile` is the discard point (0.95 = standard).
[[nodiscard]] BillingResult percentile_billing(const VolumeSeries& series,
                                               double percentile = 0.95);

/// Relative increase in billed rate caused by an overlay (attack) series on
/// top of a base series; both must share bucketing.
[[nodiscard]] double billing_increase(const VolumeSeries& base,
                                      const VolumeSeries& overlay,
                                      double percentile = 0.95);

}  // namespace gorilla::telemetry
