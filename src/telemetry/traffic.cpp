#include "telemetry/traffic.h"

#include <algorithm>
#include <map>
#include <stdexcept>

namespace gorilla::telemetry {

const char* to_string(ProtocolClass p) noexcept {
  switch (p) {
    case ProtocolClass::kNtp: return "ntp";
    case ProtocolClass::kDns: return "dns";
    case ProtocolClass::kHttp: return "http";
    case ProtocolClass::kHttps: return "https";
    case ProtocolClass::kOther: return "other";
  }
  return "?";
}

GlobalTrafficCollector::GlobalTrafficCollector(int horizon_days,
                                               double average_total_bps)
    : horizon_days_(horizon_days), baseline_bps_(average_total_bps) {
  if (horizon_days <= 0)
    throw std::invalid_argument("GlobalTrafficCollector: horizon must be > 0");
  ledger_.resize(static_cast<std::size_t>(horizon_days));
}

void GlobalTrafficCollector::add_bytes(int day, ProtocolClass proto,
                                       double bytes) {
  if (day < 0 || day >= horizon_days_) return;  // out of window: ignored
  ledger_[static_cast<std::size_t>(day)]
         [static_cast<std::size_t>(proto)] += bytes;
}

double GlobalTrafficCollector::bytes(int day, ProtocolClass proto) const {
  if (day < 0 || day >= horizon_days_) return 0.0;
  return ledger_[static_cast<std::size_t>(day)]
                [static_cast<std::size_t>(proto)];
}

double GlobalTrafficCollector::protocol_bps(int day,
                                            ProtocolClass proto) const {
  return bytes(day, proto) * 8.0 / static_cast<double>(util::kSecondsPerDay);
}

double GlobalTrafficCollector::fraction_of_internet(int day,
                                                    ProtocolClass proto) const {
  double recorded_bps = 0.0;
  for (int p = 0; p < kProtocolClassCount; ++p) {
    recorded_bps += protocol_bps(day, static_cast<ProtocolClass>(p));
  }
  const double total = baseline_bps_ + recorded_bps;
  return total > 0.0 ? protocol_bps(day, proto) / total : 0.0;
}

const char* to_string(AttackVector v) noexcept {
  switch (v) {
    case AttackVector::kNtp: return "ntp";
    case AttackVector::kDns: return "dns";
    case AttackVector::kSynFlood: return "syn";
    case AttackVector::kIcmp: return "icmp";
    case AttackVector::kChargen: return "chargen";
    case AttackVector::kOther: return "other";
  }
  return "?";
}

SizeClass classify_size(double peak_bps) noexcept {
  if (peak_bps > 20e9) return SizeClass::kLarge;
  if (peak_bps >= 2e9) return SizeClass::kMedium;
  return SizeClass::kSmall;
}

const char* to_string(SizeClass s) noexcept {
  switch (s) {
    case SizeClass::kSmall: return "Small (<2 Gbps)";
    case SizeClass::kMedium: return "Medium (2-20 Gbps)";
    case SizeClass::kLarge: return "Large (>20 Gbps)";
  }
  return "?";
}

std::vector<AttackLabelStore::MonthlyRow> AttackLabelStore::monthly_rollup()
    const {
  std::map<std::pair<int, int>, MonthlyRow> months;
  for (const auto& attack : attacks_) {
    const util::Date d = util::date_from_sim_time(attack.start);
    auto& row = months[{d.year, d.month}];
    row.year = d.year;
    row.month = d.month;
    ++row.total;
    const auto bin = static_cast<std::size_t>(classify_size(attack.peak_bps));
    ++row.by_size[bin];
    if (attack.vector == AttackVector::kNtp) {
      ++row.ntp_total;
      ++row.ntp_by_size[bin];
    }
  }
  std::vector<MonthlyRow> out;
  out.reserve(months.size());
  for (auto& [_, row] : months) out.push_back(row);
  return out;
}

}  // namespace gorilla::telemetry
