// Volumetric attack detection from rate series — the Arbor-analogue
// labeler (§2.2).
//
// The paper notes the vendor's attack-labeling mechanism is proprietary and
// "any method is likely to miss some attacks — especially small ones". This
// module implements the standard open approach: a robust EWMA baseline with
// a k-sigma exceedance rule, hysteresis for attack termination, and minimum
// duration/volume gates. A bench validates it against the simulator's
// ground-truth attack records (precision/recall), quantifying exactly the
// visibility bias the paper warns about.
#pragma once

#include <cstdint>
#include <vector>

#include "telemetry/flow.h"

namespace gorilla::telemetry {

struct DetectedAttack {
  util::SimTime start = 0;
  util::SimTime end = 0;
  double peak_bps = 0.0;
  double volume_bytes = 0.0;
};

struct DetectorConfig {
  /// EWMA smoothing factor for the baseline (per bucket).
  double baseline_alpha = 0.05;
  /// Exceedance threshold: bucket rate > baseline * factor + floor_bps.
  double threshold_factor = 4.0;
  double floor_bps = 1e6;
  /// Buckets below threshold before an attack is considered over.
  int end_hysteresis_buckets = 2;
  /// Gates against blips: minimum duration and volume to report.
  util::SimTime min_duration = 0;
  double min_volume_bytes = 0.0;
};

/// Incremental (AMON-style) detector: buckets are pushed one at a time and
/// state is O(1) — an EWMA baseline, the hysteresis counter, and the one
/// open episode. `detect_attacks` is a thin batch wrapper over this class,
/// so streaming consumers (study::DetectorSink) and batch consumers produce
/// bit-identical episodes from the same bucket sequence.
class StreamingDetector {
 public:
  StreamingDetector(util::SimTime start, util::SimTime bucket_seconds,
                    const DetectorConfig& config = {})
      : config_(config), start_(start), bucket_seconds_(bucket_seconds) {}

  /// Feeds the next bucket's byte volume. Buckets must arrive in time
  /// order; bucket `i` covers [start + i*bucket_seconds, ... + bucket_seconds).
  void push(double bucket_bytes);

  /// Closes any open episode at the current stream position. Idempotent;
  /// call once after the last push.
  void finish();

  [[nodiscard]] const std::vector<DetectedAttack>& attacks() const noexcept {
    return attacks_;
  }
  [[nodiscard]] std::vector<DetectedAttack> take_attacks() noexcept {
    return std::move(attacks_);
  }
  [[nodiscard]] std::size_t buckets_seen() const noexcept { return buckets_; }

 private:
  void finalize(std::size_t end_bucket);

  DetectorConfig config_;
  util::SimTime start_ = 0;
  util::SimTime bucket_seconds_ = 0;
  std::vector<DetectedAttack> attacks_;
  DetectedAttack current_;
  double baseline_ = 0.0;
  std::size_t buckets_ = 0;
  int quiet_buckets_ = 0;
  bool in_attack_ = false;
  bool finished_ = false;
};

/// Scans a bucketized volume series and returns detected attack episodes in
/// time order. The baseline only learns from non-attack buckets, so a long
/// attack does not teach the detector to ignore itself.
[[nodiscard]] std::vector<DetectedAttack> detect_attacks(
    const VolumeSeries& series, const DetectorConfig& config = {});

/// Match quality against ground truth: a detection matches a truth interval
/// when they overlap in time.
struct DetectionQuality {
  std::size_t truth_count = 0;
  std::size_t detected_count = 0;
  std::size_t matched_truth = 0;     ///< truth intervals hit by >=1 detection
  std::size_t matched_detected = 0;  ///< detections overlapping >=1 truth

  [[nodiscard]] double recall() const {
    return truth_count ? static_cast<double>(matched_truth) /
                             static_cast<double>(truth_count)
                       : 0.0;
  }
  [[nodiscard]] double precision() const {
    return detected_count ? static_cast<double>(matched_detected) /
                                static_cast<double>(detected_count)
                          : 0.0;
  }
};

struct TruthInterval {
  util::SimTime start = 0;
  util::SimTime end = 0;
};

[[nodiscard]] DetectionQuality score_detections(
    const std::vector<DetectedAttack>& detections,
    std::vector<TruthInterval> truth);

}  // namespace gorilla::telemetry
