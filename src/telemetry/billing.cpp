#include "telemetry/billing.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace gorilla::telemetry {

BillingResult percentile_billing(const VolumeSeries& series,
                                 double percentile) {
  BillingResult result;
  result.samples = series.bytes.size();
  if (series.bytes.empty() || series.bucket_seconds <= 0) return result;
  std::vector<double> rates;
  rates.reserve(series.bytes.size());
  double sum = 0.0;
  for (std::size_t i = 0; i < series.bytes.size(); ++i) {
    const double bps = series.rate_bps(i);
    rates.push_back(bps);
    sum += bps;
  }
  std::sort(rates.begin(), rates.end());
  result.peak_bps = rates.back();
  result.mean_bps = sum / static_cast<double>(rates.size());
  // Discard the top (1 - percentile) of samples; bill the next highest.
  // With 100 samples at p=0.95 that is sorted[94] — the top five are free.
  const double pos = percentile * static_cast<double>(rates.size());
  const std::size_t idx = static_cast<std::size_t>(std::max(
      0.0, std::ceil(pos) - 1.0));
  result.billed_bps = rates[std::min(idx, rates.size() - 1)];
  return result;
}

double billing_increase(const VolumeSeries& base, const VolumeSeries& overlay,
                        double percentile) {
  if (base.bytes.size() != overlay.bytes.size() ||
      base.bucket_seconds != overlay.bucket_seconds) {
    throw std::invalid_argument("billing_increase: series not aligned");
  }
  VolumeSeries combined = base;
  for (std::size_t i = 0; i < combined.bytes.size(); ++i) {
    combined.bytes[i] += overlay.bytes[i];
  }
  const double before = percentile_billing(base, percentile).billed_bps;
  const double after = percentile_billing(combined, percentile).billed_bps;
  return before > 0.0 ? (after - before) / before : 0.0;
}

}  // namespace gorilla::telemetry
