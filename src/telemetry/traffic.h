// Global traffic and labeled-attack statistics — the Arbor analogue (§2).
//
// The paper's §2 view is built from two Arbor Networks feeds: per-protocol
// daily traffic fractions across ~1/3..1/2 of the Internet (Figure 1), and
// labeled DDoS attack counts binned by size (Figure 2). We reproduce both
// collectors: a per-day per-protocol byte ledger against a configured total
// Internet baseline, and an attack label store with the paper's size bins.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "util/time.h"

namespace gorilla::telemetry {

/// Protocol classes tracked by the global collector (Figure 1/14 legends).
enum class ProtocolClass : std::uint8_t {
  kNtp,
  kDns,
  kHttp,
  kHttps,
  kOther,
};

inline constexpr int kProtocolClassCount = 5;

[[nodiscard]] const char* to_string(ProtocolClass p) noexcept;

/// Per-day, per-protocol byte ledger over a fixed horizon.
class GlobalTrafficCollector {
 public:
  /// `daily_total_bits` is the measured-universe daily average (the paper's
  /// dataset averages 71.5 Tbps; scaled worlds pass a scaled value).
  GlobalTrafficCollector(int horizon_days, double average_total_bps);

  void add_bytes(int day, ProtocolClass proto, double bytes);

  [[nodiscard]] double bytes(int day, ProtocolClass proto) const;

  /// Average bits-per-second of a protocol on a day.
  [[nodiscard]] double protocol_bps(int day, ProtocolClass proto) const;

  /// The Figure 1 quantity: protocol daily bps / total Internet bps, where
  /// total = baseline + all recorded protocol traffic for the day.
  [[nodiscard]] double fraction_of_internet(int day, ProtocolClass proto) const;

  [[nodiscard]] int horizon_days() const noexcept { return horizon_days_; }
  [[nodiscard]] double baseline_bps() const noexcept { return baseline_bps_; }

 private:
  int horizon_days_;
  double baseline_bps_;
  std::vector<std::array<double, kProtocolClassCount>> ledger_;
};

/// Attack vector labels (Figure 2 tracks the NTP share of each size bin).
enum class AttackVector : std::uint8_t {
  kNtp,
  kDns,
  kSynFlood,
  kIcmp,
  kChargen,
  kOther,
};

[[nodiscard]] const char* to_string(AttackVector v) noexcept;

/// Size bins exactly as §2.2 defines them.
enum class SizeClass : std::uint8_t {
  kSmall,   ///< < 2 Gbps
  kMedium,  ///< 2 - 20 Gbps
  kLarge,   ///< > 20 Gbps
};

[[nodiscard]] SizeClass classify_size(double peak_bps) noexcept;
[[nodiscard]] const char* to_string(SizeClass s) noexcept;

struct LabeledAttack {
  util::SimTime start = 0;
  AttackVector vector = AttackVector::kOther;
  double peak_bps = 0.0;
};

/// Store of labeled attacks with the Figure 2 monthly roll-up.
class AttackLabelStore {
 public:
  void add(const LabeledAttack& attack) { attacks_.push_back(attack); }

  struct MonthlyRow {
    int year = 0;
    int month = 0;
    std::uint64_t total = 0;
    std::array<std::uint64_t, 3> by_size{};        // total per size bin
    std::array<std::uint64_t, 3> ntp_by_size{};    // NTP per size bin
    std::uint64_t ntp_total = 0;

    [[nodiscard]] double ntp_fraction(SizeClass s) const {
      const auto i = static_cast<std::size_t>(s);
      return by_size[i] ? static_cast<double>(ntp_by_size[i]) /
                              static_cast<double>(by_size[i])
                        : 0.0;
    }
    [[nodiscard]] double ntp_fraction_all() const {
      return total ? static_cast<double>(ntp_total) /
                         static_cast<double>(total)
                   : 0.0;
    }
  };

  /// Rows for every month intersecting the attacks seen, in time order.
  [[nodiscard]] std::vector<MonthlyRow> monthly_rollup() const;

  [[nodiscard]] const std::vector<LabeledAttack>& attacks() const noexcept {
    return attacks_;
  }

 private:
  std::vector<LabeledAttack> attacks_;
};

}  // namespace gorilla::telemetry
