#include "telemetry/darknet.h"

namespace gorilla::telemetry {

DarknetTelescope::DarknetTelescope(const DarknetConfig& config)
    : config_(config) {}

void DarknetTelescope::observe_scan(net::Ipv4Address scanner, int day,
                                    std::uint64_t packets, bool benign) {
  if (packets == 0) return;
  auto& entry = by_day_[day][scanner.value()];
  entry.first += packets;
  entry.second = entry.second || benign;
  total_packets_ += packets;
}

void DarknetTelescope::observe_packet(const net::UdpPacket& pkt, bool benign) {
  if (!config_.telescope.contains(pkt.dst)) return;
  observe_scan(pkt.src, static_cast<int>(util::day_index(pkt.timestamp)), 1,
               benign);
}

double DarknetTelescope::effective_dark_slash24s() const noexcept {
  const double total_24s =
      static_cast<double>(config_.telescope.size()) / 256.0;
  return total_24s * config_.effective_coverage;
}

std::vector<DarknetTelescope::MonthlyVolume>
DarknetTelescope::monthly_volumes() const {
  const double dark24s = effective_dark_slash24s();
  std::map<std::pair<int, int>, MonthlyVolume> months;
  for (const auto& [day, scanners] : by_day_) {
    const util::Date d =
        util::date_from_sim_time(static_cast<util::SimTime>(day) *
                                 util::kSecondsPerDay);
    auto& row = months[{d.year, d.month}];
    row.year = d.year;
    row.month = d.month;
    for (const auto& [_, entry] : scanners) {
      const double normalized =
          dark24s > 0.0 ? static_cast<double>(entry.first) / dark24s : 0.0;
      if (entry.second) {
        row.benign_packets_per_24 += normalized;
      } else {
        row.other_packets_per_24 += normalized;
      }
    }
  }
  std::vector<MonthlyVolume> out;
  out.reserve(months.size());
  for (auto& [_, row] : months) out.push_back(row);
  return out;
}

std::map<int, std::uint64_t> DarknetTelescope::unique_scanners_per_day() const {
  std::map<int, std::uint64_t> out;
  for (const auto& [day, scanners] : by_day_) {
    out[day] = scanners.size();
  }
  return out;
}

std::vector<ScannerIdentity> DarknetTelescope::scanners() const {
  std::map<std::uint32_t, bool> seen;
  for (const auto& [_, scanners] : by_day_) {
    for (const auto& [addr, entry] : scanners) {
      seen[addr] = seen[addr] || entry.second;
    }
  }
  std::vector<ScannerIdentity> out;
  out.reserve(seen.size());
  for (const auto& [addr, benign] : seen) {
    out.push_back(ScannerIdentity{net::Ipv4Address{addr}, benign});
  }
  return out;
}

Ipv6DarknetTelescope::Ipv6DarknetTelescope(
    std::vector<net::Ipv6Prefix> covering)
    : covering_(std::move(covering)) {}

void Ipv6DarknetTelescope::observe(const net::Ipv6Address& src,
                                   const net::Ipv6Address& dst,
                                   std::uint16_t dst_port, int day,
                                   std::uint64_t packets) {
  (void)day;
  bool dark = false;
  for (const auto& p : covering_) {
    if (p.contains(dst)) {
      dark = true;
      break;
    }
  }
  if (!dark || packets == 0) return;
  total_packets_ += packets;
  if (dst_port == net::kNtpPort) {
    ntp_packets_ += packets;
    auto& stats = ntp_sources_[src];
    stats.packets += packets;
    stats.targets.insert(dst);
  }
}

std::vector<net::Ipv6Address> Ipv6DarknetTelescope::scanning_suspects(
    std::size_t min_targets) const {
  std::vector<net::Ipv6Address> out;
  for (const auto& [src, stats] : ntp_sources_) {
    if (stats.targets.size() >= min_targets) out.push_back(src);
  }
  return out;
}

std::vector<net::Ipv6Prefix> rir_covering_prefixes() {
  return {
      *net::parse_ipv6_prefix("2600::/12"),  // ARIN-analogue
      *net::parse_ipv6_prefix("2800::/12"),  // LACNIC-analogue
      *net::parse_ipv6_prefix("2400::/12"),  // APNIC-analogue
      *net::parse_ipv6_prefix("2c00::/12"),  // AFRINIC-analogue
  };
}

}  // namespace gorilla::telemetry
