#include "telemetry/darknet.h"

#include <algorithm>

namespace gorilla::telemetry {

namespace {

// splitmix64 finalizer — the same stateless-hash idiom the sim's impairment
// layer uses, duplicated here because telemetry cannot link against sim.
std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Deterministic thinning of `offered` packets by `loss`: floor of the
/// expectation, with the fractional remainder resolved by one hash draw.
std::uint64_t thin_capture(std::uint64_t seed, std::uint32_t scanner, int day,
                           std::uint64_t offered, double loss) noexcept {
  if (loss <= 0.0 || offered == 0) return offered;
  if (loss >= 1.0) return 0;
  const double expected = static_cast<double>(offered) * (1.0 - loss);
  const auto base = static_cast<std::uint64_t>(expected);
  const double frac = expected - static_cast<double>(base);
  const std::uint64_t h = mix64(
      seed ^ mix64(scanner ^ mix64(static_cast<std::uint64_t>(day + 64))));
  const double draw = static_cast<double>(h >> 11) * 0x1.0p-53;
  return std::min(offered, base + (draw < frac ? 1u : 0u));
}

}  // namespace

DarknetTelescope::DarknetTelescope(const DarknetConfig& config)
    : config_(config) {}

void DarknetTelescope::observe_scan(net::Ipv4Address scanner, int day,
                                    std::uint64_t packets, bool benign) {
  if (config_.capture_loss > 0.0) {
    packets = thin_capture(config_.loss_seed, scanner.value(), day, packets,
                           config_.capture_loss);
  }
  if (packets == 0) return;
  auto& entry = by_day_[day][scanner.value()];
  entry.first += packets;
  entry.second = entry.second || benign;
  total_packets_ += packets;
}

void DarknetTelescope::observe_packet(const net::UdpPacket& pkt, bool benign) {
  if (!config_.telescope.contains(pkt.dst)) return;
  observe_scan(pkt.src, static_cast<int>(util::day_index(pkt.timestamp)), 1,
               benign);
}

double DarknetTelescope::effective_dark_slash24s() const noexcept {
  const double total_24s =
      static_cast<double>(config_.telescope.size()) / 256.0;
  return total_24s * config_.effective_coverage;
}

std::vector<DarknetTelescope::MonthlyVolume>
DarknetTelescope::monthly_volumes() const {
  const double dark24s = effective_dark_slash24s();
  std::map<std::pair<int, int>, MonthlyVolume> months;
  for (const auto& [day, scanners] : by_day_) {
    const util::Date d =
        util::date_from_sim_time(static_cast<util::SimTime>(day) *
                                 util::kSecondsPerDay);
    auto& row = months[{d.year, d.month}];
    row.year = d.year;
    row.month = d.month;
    for (const auto& [_, entry] : scanners) {
      const double normalized =
          dark24s > 0.0 ? static_cast<double>(entry.first) / dark24s : 0.0;
      if (entry.second) {
        row.benign_packets_per_24 += normalized;
      } else {
        row.other_packets_per_24 += normalized;
      }
    }
  }
  std::vector<MonthlyVolume> out;
  out.reserve(months.size());
  for (auto& [_, row] : months) out.push_back(row);
  return out;
}

std::map<int, std::uint64_t> DarknetTelescope::unique_scanners_per_day() const {
  std::map<int, std::uint64_t> out;
  for (const auto& [day, scanners] : by_day_) {
    out[day] = scanners.size();
  }
  return out;
}

std::vector<ScannerIdentity> DarknetTelescope::scanners() const {
  std::map<std::uint32_t, bool> seen;
  for (const auto& [_, scanners] : by_day_) {
    for (const auto& [addr, entry] : scanners) {
      seen[addr] = seen[addr] || entry.second;
    }
  }
  std::vector<ScannerIdentity> out;
  out.reserve(seen.size());
  for (const auto& [addr, benign] : seen) {
    out.push_back(ScannerIdentity{net::Ipv4Address{addr}, benign});
  }
  return out;
}

Ipv6DarknetTelescope::Ipv6DarknetTelescope(
    std::vector<net::Ipv6Prefix> covering)
    : covering_(std::move(covering)) {}

void Ipv6DarknetTelescope::observe(const net::Ipv6Address& src,
                                   const net::Ipv6Address& dst,
                                   std::uint16_t dst_port, int day,
                                   std::uint64_t packets) {
  (void)day;
  bool dark = false;
  for (const auto& p : covering_) {
    if (p.contains(dst)) {
      dark = true;
      break;
    }
  }
  if (!dark || packets == 0) return;
  total_packets_ += packets;
  if (dst_port == net::kNtpPort) {
    ntp_packets_ += packets;
    auto& stats = ntp_sources_[src];
    stats.packets += packets;
    stats.targets.insert(dst);
  }
}

std::vector<net::Ipv6Address> Ipv6DarknetTelescope::scanning_suspects(
    std::size_t min_targets) const {
  std::vector<net::Ipv6Address> out;
  for (const auto& [src, stats] : ntp_sources_) {
    if (stats.targets.size() >= min_targets) out.push_back(src);
  }
  return out;
}

std::vector<net::Ipv6Prefix> rir_covering_prefixes() {
  return {
      *net::parse_ipv6_prefix("2600::/12"),  // ARIN-analogue
      *net::parse_ipv6_prefix("2800::/12"),  // LACNIC-analogue
      *net::parse_ipv6_prefix("2400::/12"),  // APNIC-analogue
      *net::parse_ipv6_prefix("2c00::/12"),  // AFRINIC-analogue
  };
}

}  // namespace gorilla::telemetry
