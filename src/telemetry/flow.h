// Unidirectional flow records and per-vantage collection.
//
// The §7 local views (Merit, FRGP/CSU) are built from netflow-style records
// exported at each ISP's border. A FlowCollector keeps the flows that cross
// its local prefix set and can aggregate them into time series and top-N
// reports — the raw material of Figures 11-16 and Tables 5-6.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "net/ipv4.h"
#include "net/prefix_trie.h"
#include "util/time.h"

namespace gorilla::telemetry {

struct FlowRecord {
  net::Ipv4Address src;
  net::Ipv4Address dst;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint8_t protocol = 17;  ///< UDP unless stated otherwise
  std::uint8_t ttl = 64;       ///< TTL observed at the vantage (§7.2)
  std::uint64_t packets = 0;
  std::uint64_t bytes = 0;          ///< on-wire bytes
  std::uint64_t payload_bytes = 0;  ///< UDP payload bytes (BAF numerators)
  util::SimTime first = 0;
  util::SimTime last = 0;

  [[nodiscard]] util::SimTime duration() const noexcept {
    return last >= first ? last - first : 0;
  }
};

/// Direction of a flow relative to a vantage's local space.
enum class Direction : std::uint8_t { kIngress, kEgress, kInternal, kTransit };

/// A bucketized byte-volume time series.
struct VolumeSeries {
  util::SimTime start = 0;
  util::SimTime bucket_seconds = 0;
  std::vector<double> bytes;  ///< per bucket

  [[nodiscard]] double rate_bps(std::size_t bucket) const {
    return bucket_seconds > 0 ? bytes[bucket] * 8.0 /
                                    static_cast<double>(bucket_seconds)
                              : 0.0;
  }
};

/// Flow collector at one vantage point (an ISP border).
class FlowCollector {
 public:
  FlowCollector(std::string name, std::vector<net::Prefix> local_prefixes);

  [[nodiscard]] const std::string& name() const noexcept { return name_; }

  /// The local prefixes this vantage covers (as configured).
  [[nodiscard]] const std::vector<net::Prefix>& prefixes() const noexcept {
    return prefixes_;
  }

  [[nodiscard]] bool is_local(net::Ipv4Address a) const {
    return local_.lookup(a).value_or(false);
  }

  [[nodiscard]] Direction direction(const FlowRecord& f) const;

  /// Records a flow if it touches local space (transit flows are dropped,
  /// as a border exporter would not see them).
  void add(const FlowRecord& f);

  [[nodiscard]] const std::vector<FlowRecord>& flows() const noexcept {
    return flows_;
  }

  /// Bucketized volume of flows matching `filter`, bytes spread uniformly
  /// across the flow's [first, last] span.
  [[nodiscard]] VolumeSeries volume_series(
      util::SimTime start, util::SimTime end, util::SimTime bucket_seconds,
      const std::function<bool(const FlowRecord&)>& filter) const;

  /// Sum of bytes over flows matching `filter`.
  [[nodiscard]] std::uint64_t total_bytes(
      const std::function<bool(const FlowRecord&)>& filter) const;

  void clear() { flows_.clear(); }

 private:
  std::string name_;
  std::vector<net::Prefix> prefixes_;
  net::PrefixTrie<bool> local_;
  std::vector<FlowRecord> flows_;
};

/// Convenience filters used across the §7 analyses.
[[nodiscard]] bool is_ntp_source(const FlowRecord& f) noexcept;  // sport 123
[[nodiscard]] bool is_ntp_dest(const FlowRecord& f) noexcept;    // dport 123

}  // namespace gorilla::telemetry
