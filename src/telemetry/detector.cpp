#include "telemetry/detector.h"

#include <algorithm>

namespace gorilla::telemetry {

void StreamingDetector::finalize(std::size_t end_bucket) {
  current_.end =
      start_ + static_cast<util::SimTime>(end_bucket) * bucket_seconds_;
  if (current_.end - current_.start >= config_.min_duration &&
      current_.volume_bytes >= config_.min_volume_bytes) {
    attacks_.push_back(current_);
  }
  in_attack_ = false;
}

void StreamingDetector::push(double bucket_bytes) {
  if (bucket_seconds_ <= 0 || finished_) return;
  const double rate =
      bucket_bytes * 8.0 / static_cast<double>(bucket_seconds_);
  // The batch detector seeds its baseline from the first bucket's rate.
  if (buckets_ == 0) baseline_ = rate;
  const std::size_t b = buckets_++;
  const double threshold =
      baseline_ * config_.threshold_factor + config_.floor_bps;
  const bool exceeds = rate > threshold;

  if (!in_attack_ && exceeds) {
    in_attack_ = true;
    quiet_buckets_ = 0;
    current_ = DetectedAttack{};
    current_.start = start_ + static_cast<util::SimTime>(b) * bucket_seconds_;
  }
  if (in_attack_) {
    if (exceeds) {
      quiet_buckets_ = 0;
      current_.peak_bps = std::max(current_.peak_bps, rate);
      current_.volume_bytes += bucket_bytes;
    } else {
      ++quiet_buckets_;
      if (quiet_buckets_ >= config_.end_hysteresis_buckets) {
        finalize(b - static_cast<std::size_t>(quiet_buckets_) + 1);
      }
    }
  }
  if (!in_attack_ || !exceeds) {
    // The baseline learns from non-attack buckets only.
    baseline_ = (1.0 - config_.baseline_alpha) * baseline_ +
                config_.baseline_alpha * rate;
  }
}

void StreamingDetector::finish() {
  if (finished_) return;
  finished_ = true;
  if (in_attack_) finalize(buckets_);
}

std::vector<DetectedAttack> detect_attacks(const VolumeSeries& series,
                                           const DetectorConfig& config) {
  if (series.bytes.empty() || series.bucket_seconds <= 0) return {};
  StreamingDetector detector(series.start, series.bucket_seconds, config);
  for (const double bucket_bytes : series.bytes) detector.push(bucket_bytes);
  detector.finish();
  return detector.take_attacks();
}

DetectionQuality score_detections(const std::vector<DetectedAttack>& detections,
                                  std::vector<TruthInterval> truth) {
  DetectionQuality q;
  q.truth_count = truth.size();
  q.detected_count = detections.size();
  std::vector<bool> truth_hit(truth.size(), false);
  for (const auto& d : detections) {
    bool matched = false;
    for (std::size_t i = 0; i < truth.size(); ++i) {
      if (d.start <= truth[i].end && truth[i].start <= d.end) {
        truth_hit[i] = true;
        matched = true;
      }
    }
    if (matched) ++q.matched_detected;
  }
  q.matched_truth = static_cast<std::size_t>(
      std::count(truth_hit.begin(), truth_hit.end(), true));
  return q;
}

}  // namespace gorilla::telemetry
