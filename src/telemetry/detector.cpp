#include "telemetry/detector.h"

#include <algorithm>

namespace gorilla::telemetry {

std::vector<DetectedAttack> detect_attacks(const VolumeSeries& series,
                                           const DetectorConfig& config) {
  std::vector<DetectedAttack> out;
  if (series.bytes.empty() || series.bucket_seconds <= 0) return out;

  double baseline = series.rate_bps(0);
  bool in_attack = false;
  int quiet_buckets = 0;
  DetectedAttack current;

  auto finalize = [&](std::size_t end_bucket) {
    current.end = series.start +
                  static_cast<util::SimTime>(end_bucket) *
                      series.bucket_seconds;
    if (current.end - current.start >= config.min_duration &&
        current.volume_bytes >= config.min_volume_bytes) {
      out.push_back(current);
    }
    in_attack = false;
  };

  for (std::size_t b = 0; b < series.bytes.size(); ++b) {
    const double rate = series.rate_bps(b);
    const double threshold =
        baseline * config.threshold_factor + config.floor_bps;
    const bool exceeds = rate > threshold;

    if (!in_attack && exceeds) {
      in_attack = true;
      quiet_buckets = 0;
      current = DetectedAttack{};
      current.start = series.start +
                      static_cast<util::SimTime>(b) * series.bucket_seconds;
    }
    if (in_attack) {
      if (exceeds) {
        quiet_buckets = 0;
        current.peak_bps = std::max(current.peak_bps, rate);
        current.volume_bytes += series.bytes[b];
      } else {
        ++quiet_buckets;
        if (quiet_buckets >= config.end_hysteresis_buckets) {
          finalize(b - static_cast<std::size_t>(quiet_buckets) + 1);
        }
      }
    }
    if (!in_attack || !exceeds) {
      // The baseline learns from non-attack buckets only.
      baseline = (1.0 - config.baseline_alpha) * baseline +
                 config.baseline_alpha * rate;
    }
  }
  if (in_attack) finalize(series.bytes.size());
  return out;
}

DetectionQuality score_detections(const std::vector<DetectedAttack>& detections,
                                  std::vector<TruthInterval> truth) {
  DetectionQuality q;
  q.truth_count = truth.size();
  q.detected_count = detections.size();
  std::vector<bool> truth_hit(truth.size(), false);
  for (const auto& d : detections) {
    bool matched = false;
    for (std::size_t i = 0; i < truth.size(); ++i) {
      if (d.start <= truth[i].end && truth[i].start <= d.end) {
        truth_hit[i] = true;
        matched = true;
      }
    }
    if (matched) ++q.matched_detected;
  }
  q.matched_truth = static_cast<std::size_t>(
      std::count(truth_hit.begin(), truth_hit.end(), true));
  return q;
}

}  // namespace gorilla::telemetry
