#include "telemetry/flow.h"

#include <algorithm>

#include "net/packet.h"

namespace gorilla::telemetry {

FlowCollector::FlowCollector(std::string name,
                             std::vector<net::Prefix> local_prefixes)
    : name_(std::move(name)), prefixes_(std::move(local_prefixes)) {
  for (const auto& p : prefixes_) local_.insert(p, true);
}

Direction FlowCollector::direction(const FlowRecord& f) const {
  const bool src_local = is_local(f.src);
  const bool dst_local = is_local(f.dst);
  if (src_local && dst_local) return Direction::kInternal;
  if (src_local) return Direction::kEgress;
  if (dst_local) return Direction::kIngress;
  return Direction::kTransit;
}

void FlowCollector::add(const FlowRecord& f) {
  if (direction(f) == Direction::kTransit) return;
  flows_.push_back(f);
}

VolumeSeries FlowCollector::volume_series(
    util::SimTime start, util::SimTime end, util::SimTime bucket_seconds,
    const std::function<bool(const FlowRecord&)>& filter) const {
  VolumeSeries series;
  series.start = start;
  series.bucket_seconds = bucket_seconds;
  if (end <= start || bucket_seconds <= 0) return series;
  const std::size_t n =
      static_cast<std::size_t>((end - start + bucket_seconds - 1) /
                               bucket_seconds);
  series.bytes.assign(n, 0.0);
  for (const auto& f : flows_) {
    if (!filter(f)) continue;
    const util::SimTime f_first = std::max(f.first, start);
    const util::SimTime f_last = std::min(std::max(f.last, f.first), end - 1);
    if (f_first > f_last) continue;
    const double span =
        static_cast<double>(std::max<util::SimTime>(1, f.last - f.first + 1));
    const double rate = static_cast<double>(f.bytes) / span;  // bytes/sec
    // Spread across buckets the [f_first, f_last] interval overlaps.
    std::size_t b = static_cast<std::size_t>((f_first - start) / bucket_seconds);
    util::SimTime cursor = f_first;
    while (cursor <= f_last && b < n) {
      const util::SimTime bucket_end = start + static_cast<util::SimTime>(b + 1) * bucket_seconds;
      const util::SimTime seg_end = std::min<util::SimTime>(f_last + 1, bucket_end);
      series.bytes[b] += rate * static_cast<double>(seg_end - cursor);
      cursor = seg_end;
      ++b;
    }
  }
  return series;
}

std::uint64_t FlowCollector::total_bytes(
    const std::function<bool(const FlowRecord&)>& filter) const {
  std::uint64_t total = 0;
  for (const auto& f : flows_) {
    if (filter(f)) total += f.bytes;
  }
  return total;
}

bool is_ntp_source(const FlowRecord& f) noexcept {
  return f.protocol == 17 && f.src_port == net::kNtpPort;
}

bool is_ntp_dest(const FlowRecord& f) noexcept {
  return f.protocol == 17 && f.dst_port == net::kNtpPort;
}

}  // namespace gorilla::telemetry
