// Darknet telescope — §5's view of Internet-wide scanning.
//
// Merit operates a darknet covering roughly 75% of a /8 (the effective dark
// fraction varies with routing churn, so the paper normalizes to packets per
// effective dark /24 per month). The telescope sees scan packets destined to
// unused space; research scanners are labeled benign by hostname, the rest
// are treated as suspected-malicious. We reproduce the capture, the
// normalization, and the unique-scanner time series of Figures 8 and 9.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "net/ipv4.h"
#include "net/ipv6.h"
#include "net/packet.h"
#include "util/time.h"

namespace gorilla::telemetry {

struct DarknetConfig {
  net::Prefix telescope;       ///< covering prefix (a /8 analogue)
  double effective_coverage = 0.75;  ///< fraction of /24s actually dark
  /// Fraction of telescope-bound packets lost before capture (path loss +
  /// collection drops). Thinned deterministically from (loss_seed, scanner,
  /// day) so runs reproduce bit-for-bit; 0 = the seed's lossless capture.
  /// (telemetry cannot link against sim, so the telescope carries its own
  /// knob; harnesses set it from the same ImpairmentConfig.)
  double capture_loss = 0.0;
  std::uint64_t loss_seed = 0;
};

/// A scanning source as the telescope resolves it (reverse DNS analogue).
struct ScannerIdentity {
  net::Ipv4Address address;
  bool benign = false;  ///< research project per hostname labeling
};

class DarknetTelescope {
 public:
  explicit DarknetTelescope(const DarknetConfig& config);

  /// Reconfigures capture loss after construction (harnesses build the
  /// telescope before they know the study's impairment settings).
  void set_capture_loss(double loss, std::uint64_t seed) noexcept {
    config_.capture_loss = loss;
    config_.loss_seed = seed;
  }

  /// Records `packets` NTP-probe packets from one scanner on one day.
  /// (Scanning arrives as vast numbers of identical small probes; the sim
  /// hands the telescope per-day aggregates rather than 10^9 datagrams.)
  void observe_scan(net::Ipv4Address scanner, int day, std::uint64_t packets,
                    bool benign);

  /// Packet-level entry point used by packet-level experiments; drops
  /// packets outside the telescope prefix.
  void observe_packet(const net::UdpPacket& pkt, bool benign);

  /// Number of effectively dark /24 blocks.
  [[nodiscard]] double effective_dark_slash24s() const noexcept;

  struct MonthlyVolume {
    int year = 0;
    int month = 0;
    double benign_packets_per_24 = 0.0;
    double other_packets_per_24 = 0.0;

    [[nodiscard]] double total() const noexcept {
      return benign_packets_per_24 + other_packets_per_24;
    }
    [[nodiscard]] double benign_fraction() const noexcept {
      const double t = total();
      return t > 0.0 ? benign_packets_per_24 / t : 0.0;
    }
  };

  /// Figure 8: monthly packets per effective dark /24, benign vs other.
  [[nodiscard]] std::vector<MonthlyVolume> monthly_volumes() const;

  /// Figure 9: unique scanner IPs seen per day.
  [[nodiscard]] std::map<int, std::uint64_t> unique_scanners_per_day() const;

  /// All scanner identities seen over the capture.
  [[nodiscard]] std::vector<ScannerIdentity> scanners() const;

  /// Total packets captured.
  [[nodiscard]] std::uint64_t total_packets() const noexcept {
    return total_packets_;
  }

 private:
  DarknetConfig config_;
  // day -> scanner -> (packets, benign)
  std::map<int, std::map<std::uint32_t, std::pair<std::uint64_t, bool>>>
      by_day_;
  std::uint64_t total_packets_ = 0;
};

/// The IPv6 telescope of §5.1: covering prefixes for four of the five RIRs.
/// The paper searched its captures for NTP scanning and found only errant
/// point-to-point NTP — no broad sweeps. The class records dark-side v6
/// traffic and answers that question.
class Ipv6DarknetTelescope {
 public:
  explicit Ipv6DarknetTelescope(std::vector<net::Ipv6Prefix> covering);

  /// Records `packets` from `src` to somewhere in the dark space on `day`,
  /// with the given destination port. Destinations outside the covering
  /// prefixes are ignored.
  void observe(const net::Ipv6Address& src, const net::Ipv6Address& dst,
               std::uint16_t dst_port, int day, std::uint64_t packets = 1);

  [[nodiscard]] std::uint64_t total_packets() const noexcept {
    return total_packets_;
  }
  [[nodiscard]] std::uint64_t ntp_packets() const noexcept {
    return ntp_packets_;
  }
  [[nodiscard]] std::size_t unique_ntp_sources() const noexcept {
    return ntp_sources_.size();
  }

  /// Sources that touched at least `min_targets` distinct dark NTP targets
  /// — the signature of sweeping. An errant point-to-point association
  /// chirps at ONE dark address forever and never qualifies, no matter the
  /// volume.
  [[nodiscard]] std::vector<net::Ipv6Address> scanning_suspects(
      std::size_t min_targets = 16) const;

  /// The §5.1 verdict: true when no source swept — dark-side NTP is all
  /// errant point-to-point chatter.
  [[nodiscard]] bool no_broad_scanning(std::size_t min_targets = 16) const {
    return scanning_suspects(min_targets).empty();
  }

 private:
  struct SourceStats {
    std::uint64_t packets = 0;
    std::set<net::Ipv6Address> targets;
  };

  std::vector<net::Ipv6Prefix> covering_;
  std::map<net::Ipv6Address, SourceStats> ntp_sources_;
  std::uint64_t total_packets_ = 0;
  std::uint64_t ntp_packets_ = 0;
};

/// The four RIR covering prefixes the paper's IPv6 telescope announced
/// (ARIN, LACNIC, APNIC, AFRINIC analogues).
[[nodiscard]] std::vector<net::Ipv6Prefix> rir_covering_prefixes();

}  // namespace gorilla::telemetry
