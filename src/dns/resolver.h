// Open DNS recursive resolvers — the comparison amplifier pool of §6.2.
//
// Figure 10 contrasts how quickly three amplifier pools shrank after
// publicity began: NTP monlist (−92%), NTP version (−19%), and open DNS
// resolvers (essentially flat, 33.9M at peak). We model the resolver pool
// at the same fidelity the paper uses it: a population with a decay process
// and an ANY-query amplification response, dominated by hard-to-update CPE
// devices.
#pragma once

#include <cstdint>
#include <vector>

#include "net/ipv4.h"
#include "net/packet.h"
#include "net/registry.h"
#include "util/rng.h"
#include "util/time.h"

namespace gorilla::dns {

struct ResolverPoolConfig {
  std::uint64_t seed = util::Rng::kDefaultSeed ^ 0xd45ULL;
  /// Pool size at peak. The paper's peak is 33.9M; benches scale this down
  /// and report the scale factor.
  std::uint64_t peak_size = 339000;
  /// Fraction of the pool on customer-premises equipment (slow to fix).
  double cpe_fraction = 0.85;
  /// Weekly remediation probability for CPE and infrastructure resolvers.
  /// Calibrated so the pool loses only a few percent over a year (§6.2).
  double cpe_weekly_fix_rate = 0.0004;
  double infra_weekly_fix_rate = 0.004;

  /// Addresses that host an open resolver *in addition to* whatever else
  /// they run — §6.2 found ~9.2% of NTP amplifier IPs were also open DNS
  /// resolvers ("badly mis-managed IPs"). These are placed verbatim, the
  /// rest of the pool is drawn from the registry.
  std::vector<net::Ipv4Address> co_hosted;
};

/// One open resolver (value type; the pool stores them contiguously).
struct OpenResolver {
  net::Ipv4Address address;
  bool cpe = false;
  /// Week index (since publicity start) at which it stops answering, or -1.
  std::int32_t fixed_week = -1;
};

/// The open-resolver population and its decay process.
class ResolverPool {
 public:
  ResolverPool(const net::Registry& registry, const ResolverPoolConfig& config,
               int horizon_weeks);

  /// Number of resolvers still open at the given week since publicity.
  [[nodiscard]] std::uint64_t open_count(int week) const;

  [[nodiscard]] const std::vector<OpenResolver>& resolvers() const noexcept {
    return resolvers_;
  }

  /// True when the resolver at `index` still answers at `week`.
  [[nodiscard]] bool is_open(std::size_t index, int week) const {
    const auto& r = resolvers_[index];
    return r.fixed_week < 0 || week < r.fixed_week;
  }

 private:
  std::vector<OpenResolver> resolvers_;
  std::vector<std::uint64_t> open_by_week_;
};

/// UDP payload size of a minimal "ANY <zone>" query.
[[nodiscard]] std::size_t any_query_bytes();

/// Simulated response size (UDP payload bytes) of an open resolver answering
/// an ANY query — the ~30x amplification DNS attacks relied on.
[[nodiscard]] std::size_t any_response_bytes(util::Rng& rng);

}  // namespace gorilla::dns
