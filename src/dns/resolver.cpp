#include "dns/resolver.h"

#include <algorithm>

namespace gorilla::dns {

ResolverPool::ResolverPool(const net::Registry& registry,
                           const ResolverPoolConfig& config,
                           int horizon_weeks) {
  util::Rng rng(config.seed);
  resolvers_.reserve(config.peak_size + config.co_hosted.size());
  for (const auto addr : config.co_hosted) {
    OpenResolver r;
    r.address = addr;
    r.cpe = rng.chance(0.5);  // mismanaged boxes of both kinds
    const double weekly = r.cpe ? config.cpe_weekly_fix_rate
                                : config.infra_weekly_fix_rate;
    for (int w = 1; w <= horizon_weeks; ++w) {
      if (rng.chance(weekly)) {
        r.fixed_week = w;
        break;
      }
    }
    resolvers_.push_back(r);
  }
  for (std::uint64_t i = 0; i < config.peak_size; ++i) {
    OpenResolver r;
    r.cpe = rng.chance(config.cpe_fraction);
    // CPE resolvers live in residential space; infrastructure anywhere.
    const auto addr = r.cpe
                          ? registry.random_address(
                                rng, [](const net::RoutedBlock& b) {
                                  return b.residential;
                                })
                          : std::optional<net::Ipv4Address>(
                                registry.random_address(rng));
    r.address = addr.value_or(registry.random_address(rng));
    const double weekly = r.cpe ? config.cpe_weekly_fix_rate
                                : config.infra_weekly_fix_rate;
    // Geometric lifetime in weeks; most never fix within the horizon.
    for (int w = 1; w <= horizon_weeks; ++w) {
      if (rng.chance(weekly)) {
        r.fixed_week = w;
        break;
      }
    }
    resolvers_.push_back(r);
  }
  open_by_week_.assign(static_cast<std::size_t>(horizon_weeks) + 1, 0);
  for (const auto& r : resolvers_) {
    for (int w = 0; w <= horizon_weeks; ++w) {
      if (r.fixed_week < 0 || w < r.fixed_week) ++open_by_week_[w];
    }
  }
}

std::uint64_t ResolverPool::open_count(int week) const {
  if (week < 0) week = 0;
  const auto idx = std::min<std::size_t>(static_cast<std::size_t>(week),
                                         open_by_week_.size() - 1);
  return open_by_week_[idx];
}

std::size_t any_query_bytes() {
  // 12-byte DNS header + QNAME "isc.org" style + QTYPE/QCLASS ~ 25 bytes,
  // plus EDNS0 OPT RR advertising a 4096-byte buffer (11 bytes).
  return 36;
}

std::size_t any_response_bytes(util::Rng& rng) {
  // ANY responses for abused zones clustered around 3-4 KB (EDNS0-limited).
  const double v = rng.lognormal(/*mu=*/8.0, /*sigma=*/0.35);
  return static_cast<std::size_t>(std::clamp(v, 512.0, 4096.0));
}

}  // namespace gorilla::dns
