// Minimal pcap (libpcap classic format) writer/reader for UDP datagrams.
//
// The paper's darknet dataset is "full packet captures"; this module lets
// the telescope (and any other component) persist simulated traffic in the
// standard interchange format — a capture written here opens in tcpdump or
// Wireshark — and read it back for offline analysis. Only Ethernet/IPv4/UDP
// framing is emitted, which is all the study's traffic uses.
#pragma once

#include <cstdint>
#include <istream>
#include <optional>
#include <ostream>
#include <string>
#include <vector>

#include "net/packet.h"

namespace gorilla::net {

/// Classic pcap magic (microsecond timestamps, little-endian host order).
inline constexpr std::uint32_t kPcapMagic = 0xa1b2c3d4;
inline constexpr std::uint16_t kPcapVersionMajor = 2;
inline constexpr std::uint16_t kPcapVersionMinor = 4;
inline constexpr std::uint32_t kLinkTypeEthernet = 1;

/// Fixed sizes of the classic pcap file header and per-record header.
inline constexpr std::size_t kPcapFileHeaderBytes = 24;
inline constexpr std::size_t kPcapRecordHeaderBytes = 16;

/// Streams UDP packets into a pcap byte stream. The stream must outlive
/// the writer. Each UdpPacket is wrapped in synthetic Ethernet + IPv4 + UDP
/// headers (checksums computed, locally-administered MAC addresses derived
/// from the IPs so flows are visually traceable).
class PcapWriter {
 public:
  explicit PcapWriter(std::ostream& out);

  /// Appends one packet record; returns bytes written.
  std::size_t write(const UdpPacket& packet);

  [[nodiscard]] std::uint64_t packets_written() const noexcept {
    return packets_;
  }

  /// True while every write so far reached the stream intact (sticky —
  /// mirrors the sink discipline of util::write_all).
  [[nodiscard]] bool ok() const noexcept { return ok_; }

 private:
  std::ostream& out_;
  std::uint64_t packets_ = 0;
  bool ok_ = true;
};

/// Reads UDP packets back from a pcap byte stream. Non-UDP records are
/// skipped (counted); malformed records end the stream.
class PcapReader {
 public:
  explicit PcapReader(std::istream& in);

  /// True if the stream began with a valid classic pcap header.
  [[nodiscard]] bool valid() const noexcept { return valid_; }

  /// Next UDP packet, or nullopt at end-of-stream.
  [[nodiscard]] std::optional<UdpPacket> next();

  [[nodiscard]] std::uint64_t packets_read() const noexcept {
    return packets_;
  }
  [[nodiscard]] std::uint64_t records_skipped() const noexcept {
    return skipped_;
  }

 private:
  std::istream& in_;
  bool valid_ = false;
  std::uint64_t packets_ = 0;
  std::uint64_t skipped_ = 0;
};

/// Serializes one UDP packet into a full Ethernet frame (no pcap header) —
/// the payload bytes a capture record carries.
[[nodiscard]] std::vector<std::uint8_t> to_ethernet_frame(
    const UdpPacket& packet);

/// Parses an Ethernet frame back into a UdpPacket; nullopt unless the frame
/// is well-formed Ethernet + IPv4 + UDP.
[[nodiscard]] std::optional<UdpPacket> from_ethernet_frame(
    std::span<const std::uint8_t> frame);

}  // namespace gorilla::net
