#include "net/registry.h"

#include <algorithm>
#include <array>
#include <stdexcept>

namespace gorilla::net {

const char* to_string(AsCategory c) noexcept {
  switch (c) {
    case AsCategory::kHosting: return "hosting";
    case AsCategory::kTelecom: return "telecom";
    case AsCategory::kResidentialIsp: return "residential";
    case AsCategory::kEnterprise: return "enterprise";
    case AsCategory::kUniversity: return "university";
    case AsCategory::kRegionalIsp: return "regional";
  }
  return "?";
}

const char* to_string(Continent c) noexcept {
  switch (c) {
    case Continent::kNorthAmerica: return "North America";
    case Continent::kOceania: return "Oceania";
    case Continent::kEurope: return "Europe";
    case Continent::kAsia: return "Asia";
    case Continent::kAfrica: return "Africa";
    case Continent::kSouthAmerica: return "South America";
  }
  return "?";
}

namespace {

/// Sequential aligned allocator over the IPv4 space, starting above 1.0.0.0.
class AddressAllocator {
 public:
  /// Returns an aligned prefix of the given length and advances the cursor.
  Prefix allocate(int length) {
    const std::uint64_t size = std::uint64_t{1} << (32 - length);
    std::uint64_t base = (cursor_ + size - 1) / size * size;  // align up
    if (base + size > (std::uint64_t{1} << 32))
      throw std::runtime_error("registry: IPv4 space exhausted");
    cursor_ = base + size;
    return Prefix{Ipv4Address{static_cast<std::uint32_t>(base)}, length};
  }

 private:
  std::uint64_t cursor_ = std::uint64_t{1} << 24;  // skip 0.0.0.0/8
};

}  // namespace

Registry::Registry(const RegistryConfig& config) {
  util::Rng rng(config.seed);

  AddressAllocator alloc;

  auto add_as = [&](AsCategory cat, Continent cont, std::string name) -> Asn {
    const Asn asn = static_cast<Asn>(ases_.size() + 1);
    ases_.push_back(AsInfo{asn, cat, cont, std::move(name), {}});
    return asn;
  };

  auto add_block = [&](Asn asn, const Prefix& prefix, bool residential) {
    const auto idx = static_cast<std::uint32_t>(blocks_.size());
    blocks_.push_back(RoutedBlock{prefix, asn, residential});
    ases_[asn - 1].block_indices.push_back(idx);
  };

  // --- Named analogue networks (fixed, allocated first so their addresses
  // are stable across config changes to num_ases). ---
  named_.darknet = alloc.allocate(8);  // telescope space; intentionally NOT
                                       // added to blocks_: it is dark.

  named_.merit = add_as(AsCategory::kRegionalIsp, Continent::kNorthAmerica,
                        "MERIT-ANALOGUE");
  named_.merit_space = alloc.allocate(14);
  // Merit serves multiple institutions: expose its space as four /16 blocks.
  for (int i = 0; i < 4; ++i) {
    const Prefix p{named_.merit_space.at(static_cast<std::uint64_t>(i) << 16),
                   16};
    add_block(named_.merit, p, /*residential=*/i == 3);  // one access block
  }

  named_.frgp = add_as(AsCategory::kRegionalIsp, Continent::kNorthAmerica,
                       "FRGP-ANALOGUE");
  named_.csu = add_as(AsCategory::kUniversity, Continent::kNorthAmerica,
                      "CSU-ANALOGUE");
  named_.frgp_space = alloc.allocate(14);
  named_.csu_space = Prefix{named_.frgp_space.base(), 16};
  add_block(named_.csu, named_.csu_space, /*residential=*/false);
  for (int i = 1; i < 4; ++i) {
    const Prefix p{named_.frgp_space.at(static_cast<std::uint64_t>(i) << 16),
                   16};
    add_block(named_.frgp, p, /*residential=*/i == 3);
  }

  named_.ovh_analogue =
      add_as(AsCategory::kHosting, Continent::kEurope, "OVH-ANALOGUE");
  for (int i = 0; i < 4; ++i) {
    add_block(named_.ovh_analogue, alloc.allocate(16), /*residential=*/false);
  }

  named_.cloudflare_analogue = add_as(AsCategory::kHosting,
                                      Continent::kNorthAmerica,
                                      "CDN-SHIELD-ANALOGUE");
  add_block(named_.cloudflare_analogue, alloc.allocate(16), false);

  // --- Generated ASes. ---
  static constexpr std::array<AsCategory, 6> kCats = {
      AsCategory::kHosting,       AsCategory::kTelecom,
      AsCategory::kResidentialIsp, AsCategory::kEnterprise,
      AsCategory::kUniversity,    AsCategory::kRegionalIsp};
  static constexpr std::array<double, 6> kCatWeights = {0.08, 0.10, 0.25,
                                                        0.40, 0.12, 0.05};
  static constexpr std::array<Continent, 6> kConts = {
      Continent::kNorthAmerica, Continent::kOceania, Continent::kEurope,
      Continent::kAsia,         Continent::kAfrica,  Continent::kSouthAmerica};
  static constexpr std::array<double, 6> kContWeights = {0.30, 0.04, 0.25,
                                                         0.25, 0.08, 0.08};
  const util::WeightedSampler cat_sampler{
      std::span<const double>(kCatWeights)};
  const util::WeightedSampler cont_sampler{
      std::span<const double>(kContWeights)};
  const util::ZipfSampler blocks_sampler(config.max_blocks_per_as,
                                         config.blocks_per_as_zipf);

  for (std::uint32_t i = 0; i < config.num_ases; ++i) {
    const AsCategory cat = kCats[cat_sampler.sample(rng)];
    const Continent cont = kConts[cont_sampler.sample(rng)];
    const Asn asn = add_as(cat, cont, "AS-GEN-" + std::to_string(i));
    const auto nblocks = static_cast<std::uint32_t>(blocks_sampler.sample(rng)) + 1;
    for (std::uint32_t b = 0; b < nblocks; ++b) {
      int len = 24;
      bool residential = false;
      switch (cat) {
        case AsCategory::kResidentialIsp:
          len = static_cast<int>(rng.uniform_int(17, 20));
          residential = true;
          break;
        case AsCategory::kTelecom:
          len = static_cast<int>(rng.uniform_int(16, 19));
          residential = rng.chance(0.5);
          break;
        case AsCategory::kHosting:
          len = static_cast<int>(rng.uniform_int(18, 21));
          break;
        case AsCategory::kEnterprise:
          len = static_cast<int>(rng.uniform_int(21, 24));
          residential = rng.chance(0.05);
          break;
        case AsCategory::kUniversity:
          len = static_cast<int>(rng.uniform_int(17, 20));
          residential = rng.chance(0.15);
          break;
        case AsCategory::kRegionalIsp:
          len = static_cast<int>(rng.uniform_int(16, 19));
          residential = rng.chance(0.3);
          break;
      }
      add_block(asn, alloc.allocate(len), residential);
    }
  }

  // --- Index structures. ---
  cumulative_sizes_.reserve(blocks_.size());
  for (std::uint32_t idx = 0; idx < blocks_.size(); ++idx) {
    block_trie_.insert(blocks_[idx].prefix, idx);
    total_addresses_ += blocks_[idx].prefix.size();
    cumulative_sizes_.push_back(total_addresses_);
  }
}

std::optional<Asn> Registry::asn_of(Ipv4Address a) const {
  const auto idx = block_trie_.lookup(a);
  if (!idx) return std::nullopt;
  return blocks_[*idx].asn;
}

std::optional<std::uint32_t> Registry::block_index_of(Ipv4Address a) const {
  return block_trie_.lookup(a);
}

const AsInfo& Registry::as_info(Asn asn) const {
  if (asn == 0 || asn > ases_.size())
    throw std::out_of_range("Registry::as_info: unknown ASN");
  return ases_[asn - 1];
}

std::optional<Continent> Registry::continent_of(Ipv4Address a) const {
  const auto asn = asn_of(a);
  if (!asn) return std::nullopt;
  return as_info(*asn).continent;
}

std::uint32_t Registry::weighted_block_sample(util::Rng& rng) const {
  const std::uint64_t u = rng.uniform(total_addresses_);
  const auto it =
      std::upper_bound(cumulative_sizes_.begin(), cumulative_sizes_.end(), u);
  return static_cast<std::uint32_t>(it - cumulative_sizes_.begin());
}

Ipv4Address Registry::random_address(util::Rng& rng) const {
  const auto& blk = blocks_[weighted_block_sample(rng)];
  return blk.prefix.at(rng.uniform(blk.prefix.size()));
}

}  // namespace gorilla::net
