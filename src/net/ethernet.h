// Ethernet on-wire byte accounting.
//
// The paper computes its bandwidth amplification factors "on-wire": every
// packet costs at least the 64-byte minimum Ethernet frame plus the 8-byte
// preamble and the 12-byte inter-packet gap — 84 bytes total for a minimal
// query (§3.2). Larger packets cost header + payload + FCS + preamble + IPG.
#pragma once

#include <algorithm>
#include <cstdint>

namespace gorilla::net {

inline constexpr std::uint64_t kEthernetHeaderBytes = 14;   // dst+src+type
inline constexpr std::uint64_t kEthernetFcsBytes = 4;       // CRC32
inline constexpr std::uint64_t kEthernetMinFrameBytes = 64; // incl. FCS
inline constexpr std::uint64_t kEthernetPreambleBytes = 8;  // preamble + SFD
inline constexpr std::uint64_t kInterPacketGapBytes = 12;
inline constexpr std::uint64_t kIpv4HeaderBytes = 20;
inline constexpr std::uint64_t kUdpHeaderBytes = 8;

/// Bytes a frame with the given IP datagram length occupies on the wire,
/// including padding to the minimum frame size, preamble, and IPG.
[[nodiscard]] constexpr std::uint64_t on_wire_bytes_for_ip(
    std::uint64_t ip_datagram_bytes) noexcept {
  const std::uint64_t frame = std::max(
      kEthernetMinFrameBytes,
      kEthernetHeaderBytes + ip_datagram_bytes + kEthernetFcsBytes);
  return frame + kEthernetPreambleBytes + kInterPacketGapBytes;
}

/// On-wire bytes for a UDP payload of the given size.
[[nodiscard]] constexpr std::uint64_t on_wire_bytes_for_udp(
    std::uint64_t udp_payload_bytes) noexcept {
  return on_wire_bytes_for_ip(kIpv4HeaderBytes + kUdpHeaderBytes +
                              udp_payload_bytes);
}

/// On-wire cost of a minimal query packet — the BAF denominator (84 bytes).
inline constexpr std::uint64_t kMinOnWireBytes = on_wire_bytes_for_ip(0);
static_assert(kMinOnWireBytes == 84,
              "paper's minimal on-wire query must be 84 bytes");

}  // namespace gorilla::net
