// Synthetic Internet registry: autonomous systems, routed blocks, geography.
//
// The paper attributes amplifiers and victims to routed blocks, origin ASes,
// and continents using BGP tables and GeoIP data we do not have. This module
// generates a deterministic synthetic registry with the same *structural*
// properties the analyses depend on: a heavy-tailed block-per-AS
// distribution, AS categories (hosting, telecom, residential, ...), a
// continent for every AS, and a handful of named analogue networks the
// evaluation references (an OVH-like hosting firm, Merit-like and FRGP-like
// regional ISPs with a CSU-like customer, a /8 darknet, and a JP-like region
// that hosts the mega amplifiers).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "net/ipv4.h"
#include "net/prefix_trie.h"
#include "util/rng.h"

namespace gorilla::net {

using Asn = std::uint32_t;

/// Business category of an AS; drives block sizes, end-host density, NTP
/// server density, and remediation speed.
enum class AsCategory : std::uint8_t {
  kHosting,
  kTelecom,
  kResidentialIsp,
  kEnterprise,
  kUniversity,
  kRegionalIsp,
};

[[nodiscard]] const char* to_string(AsCategory c) noexcept;

/// Continent of an AS (the paper's §6.1 regional remediation axis).
enum class Continent : std::uint8_t {
  kNorthAmerica,
  kOceania,
  kEurope,
  kAsia,
  kAfrica,
  kSouthAmerica,
};

inline constexpr int kContinentCount = 6;

[[nodiscard]] const char* to_string(Continent c) noexcept;

struct AsInfo {
  Asn asn = 0;
  AsCategory category = AsCategory::kEnterprise;
  Continent continent = Continent::kNorthAmerica;
  std::string name;
  /// Indices into Registry::blocks() of this AS's routed blocks.
  std::vector<std::uint32_t> block_indices;
};

struct RoutedBlock {
  Prefix prefix;
  Asn asn = 0;
  /// True for access-network space whose hosts are end-user machines; feeds
  /// the PolicyBlockList (Spamhaus PBL analogue).
  bool residential = false;
};

struct RegistryConfig {
  std::uint64_t seed = util::Rng::kDefaultSeed;
  /// Number of ordinary (generated) ASes, in addition to the named analogues.
  std::uint32_t num_ases = 18000;
  /// Zipf exponent for blocks-per-AS (heavier -> a few very large carriers).
  double blocks_per_as_zipf = 1.3;
  /// Maximum blocks a single generated AS may hold.
  std::uint32_t max_blocks_per_as = 64;
};

/// The named analogue networks, resolvable via Registry accessors.
struct NamedNetworks {
  Asn ovh_analogue = 0;       ///< large hosting provider (top victim AS, §4.4)
  Asn cloudflare_analogue = 0;///< DDoS-protection network (victim rank ~18)
  Asn merit = 0;              ///< regional ISP A (operational space)
  Asn frgp = 0;               ///< regional ISP B
  Asn csu = 0;                ///< university customer inside FRGP
  Prefix darknet;             ///< /8 telescope space (~75% effectively dark)
  Prefix merit_space;         ///< Merit operational covering prefix
  Prefix frgp_space;          ///< FRGP covering prefix
  Prefix csu_space;           ///< CSU covering prefix (inside frgp_space)
};

/// Deterministic synthetic registry; all lookups are O(32) trie walks.
class Registry {
 public:
  explicit Registry(const RegistryConfig& config = {});

  [[nodiscard]] const std::vector<AsInfo>& ases() const noexcept {
    return ases_;
  }
  [[nodiscard]] const std::vector<RoutedBlock>& blocks() const noexcept {
    return blocks_;
  }
  [[nodiscard]] const NamedNetworks& named() const noexcept { return named_; }

  /// Origin AS of an address; nullopt for unallocated space.
  [[nodiscard]] std::optional<Asn> asn_of(Ipv4Address a) const;

  /// Index into blocks() of the routed block covering an address.
  [[nodiscard]] std::optional<std::uint32_t> block_index_of(Ipv4Address a) const;

  [[nodiscard]] const AsInfo& as_info(Asn asn) const;

  /// Continent of the AS owning an address (nullopt if unallocated).
  [[nodiscard]] std::optional<Continent> continent_of(Ipv4Address a) const;

  /// Draws a uniformly random allocated address whose block satisfies `pred`;
  /// at most `max_tries` rejections before giving up (nullopt).
  template <typename Pred>
  [[nodiscard]] std::optional<Ipv4Address> random_address(
      util::Rng& rng, Pred&& pred, int max_tries = 256) const {
    for (int i = 0; i < max_tries; ++i) {
      const auto& blk =
          blocks_[weighted_block_sample(rng)];
      if (!pred(blk)) continue;
      return blk.prefix.at(rng.uniform(blk.prefix.size()));
    }
    return std::nullopt;
  }

  /// Uniformly random allocated address (weighted by block size).
  [[nodiscard]] Ipv4Address random_address(util::Rng& rng) const;

  /// Total allocated address count across all routed blocks.
  [[nodiscard]] std::uint64_t allocated_addresses() const noexcept {
    return total_addresses_;
  }

 private:
  [[nodiscard]] std::uint32_t weighted_block_sample(util::Rng& rng) const;

  std::vector<AsInfo> ases_;
  std::vector<RoutedBlock> blocks_;
  PrefixTrie<std::uint32_t> block_trie_;  // block index by prefix
  std::vector<std::uint64_t> cumulative_sizes_;
  std::uint64_t total_addresses_ = 0;
  NamedNetworks named_;
};

}  // namespace gorilla::net
