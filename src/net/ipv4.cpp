#include "net/ipv4.h"

#include <cstdio>

namespace gorilla::net {

std::string to_string(Ipv4Address addr) {
  char buf[20];
  std::snprintf(buf, sizeof buf, "%u.%u.%u.%u", addr.octet(0), addr.octet(1),
                addr.octet(2), addr.octet(3));
  return buf;
}

std::optional<Ipv4Address> parse_ipv4(const std::string& s) {
  unsigned a = 0, b = 0, c = 0, d = 0;
  char trailing = 0;
  if (std::sscanf(s.c_str(), "%u.%u.%u.%u%c", &a, &b, &c, &d, &trailing) != 4 ||
      a > 255 || b > 255 || c > 255 || d > 255) {
    return std::nullopt;
  }
  return Ipv4Address(static_cast<std::uint8_t>(a), static_cast<std::uint8_t>(b),
                     static_cast<std::uint8_t>(c), static_cast<std::uint8_t>(d));
}

std::string to_string(const Prefix& p) {
  return to_string(p.base()) + "/" + std::to_string(p.length());
}

std::optional<Prefix> parse_prefix(const std::string& s) {
  const auto slash = s.find('/');
  if (slash == std::string::npos) return std::nullopt;
  const auto addr = parse_ipv4(s.substr(0, slash));
  if (!addr) return std::nullopt;
  int length = -1;
  try {
    length = std::stoi(s.substr(slash + 1));
  } catch (...) {
    return std::nullopt;
  }
  if (length < 0 || length > 32) return std::nullopt;
  return Prefix{*addr, length};
}

}  // namespace gorilla::net
