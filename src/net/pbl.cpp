#include "net/pbl.h"

namespace gorilla::net {

PolicyBlockList::PolicyBlockList(const Registry& registry,
                                 const PblConfig& config) {
  util::Rng rng(config.seed);
  for (const auto& block : registry.blocks()) {
    const double p = block.residential ? config.residential_listing_rate
                                       : config.false_listing_rate;
    if (rng.chance(p)) trie_.insert(block.prefix, true);
  }
}

}  // namespace gorilla::net
