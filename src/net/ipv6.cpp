#include "net/ipv6.h"

#include <cstdio>
#include <vector>

namespace gorilla::net {

std::string to_string(const Ipv6Address& a) {
  // Find the longest run of zero groups (>= 2) for "::" compression.
  int best_start = -1, best_len = 0;
  int run_start = -1, run_len = 0;
  for (int i = 0; i < 8; ++i) {
    if (a.group(i) == 0) {
      if (run_start < 0) run_start = i;
      ++run_len;
      if (run_len > best_len) {
        best_len = run_len;
        best_start = run_start;
      }
    } else {
      run_start = -1;
      run_len = 0;
    }
  }
  if (best_len < 2) best_start = -1;

  std::string out;
  char buf[8];
  for (int i = 0; i < 8; ++i) {
    if (best_start >= 0 && i == best_start) {
      out += "::";
      i += best_len - 1;
      if (i == 7) return out;  // trailing "::"
      continue;
    }
    if (!out.empty() && out.back() != ':') out += ':';
    std::snprintf(buf, sizeof buf, "%x", a.group(i));
    out += buf;
  }
  return out;
}

std::optional<Ipv6Address> parse_ipv6(const std::string& s) {
  // Split on "::" first.
  const auto dcolon = s.find("::");
  std::vector<std::uint16_t> head, tail;
  auto parse_groups = [](const std::string& part,
                         std::vector<std::uint16_t>& out) -> bool {
    if (part.empty()) return true;
    std::size_t pos = 0;
    while (pos <= part.size()) {
      const auto colon = part.find(':', pos);
      const std::string token =
          part.substr(pos, colon == std::string::npos ? std::string::npos
                                                      : colon - pos);
      if (token.empty() || token.size() > 4) return false;
      unsigned value = 0;
      for (const char c : token) {
        value <<= 4;
        if (c >= '0' && c <= '9') value |= static_cast<unsigned>(c - '0');
        else if (c >= 'a' && c <= 'f') value |= static_cast<unsigned>(c - 'a' + 10);
        else if (c >= 'A' && c <= 'F') value |= static_cast<unsigned>(c - 'A' + 10);
        else return false;
      }
      out.push_back(static_cast<std::uint16_t>(value));
      if (colon == std::string::npos) break;
      pos = colon + 1;
      if (pos == part.size()) return false;  // trailing single colon
    }
    return true;
  };

  if (dcolon == std::string::npos) {
    if (!parse_groups(s, head) || head.size() != 8) return std::nullopt;
  } else {
    if (s.find("::", dcolon + 1) != std::string::npos) return std::nullopt;
    if (!parse_groups(s.substr(0, dcolon), head)) return std::nullopt;
    if (!parse_groups(s.substr(dcolon + 2), tail)) return std::nullopt;
    if (head.size() + tail.size() > 7) return std::nullopt;
  }

  std::array<std::uint8_t, 16> bytes{};
  for (std::size_t i = 0; i < head.size(); ++i) {
    util::store_u16be(bytes, i * 2, head[i]);
  }
  for (std::size_t i = 0; i < tail.size(); ++i) {
    const std::size_t g = 8 - tail.size() + i;
    util::store_u16be(bytes, g * 2, tail[i]);
  }
  return Ipv6Address{bytes};
}

Ipv6Prefix::Ipv6Prefix(const Ipv6Address& base, int length) noexcept
    : length_(length) {
  std::array<std::uint8_t, 16> bytes = base.bytes();
  for (int bit = length; bit < 128; ++bit) {
    bytes[static_cast<std::size_t>(bit / 8)] &=
        static_cast<std::uint8_t>(~(0x80u >> (bit % 8)));
  }
  base_ = Ipv6Address{bytes};
}

bool Ipv6Prefix::contains(const Ipv6Address& a) const noexcept {
  for (int bit = 0; bit < length_; ++bit) {
    const std::size_t byte = static_cast<std::size_t>(bit / 8);
    const std::uint8_t mask = static_cast<std::uint8_t>(0x80u >> (bit % 8));
    if ((a.bytes()[byte] & mask) != (base_.bytes()[byte] & mask)) {
      return false;
    }
  }
  return true;
}

std::string to_string(const Ipv6Prefix& p) {
  return to_string(p.base()) + "/" + std::to_string(p.length());
}

std::optional<Ipv6Prefix> parse_ipv6_prefix(const std::string& s) {
  const auto slash = s.find('/');
  if (slash == std::string::npos) return std::nullopt;
  const auto addr = parse_ipv6(s.substr(0, slash));
  if (!addr) return std::nullopt;
  int length = -1;
  try {
    length = std::stoi(s.substr(slash + 1));
  } catch (...) {
    return std::nullopt;
  }
  if (length < 0 || length > 128) return std::nullopt;
  return Ipv6Prefix{*addr, length};
}

}  // namespace gorilla::net
