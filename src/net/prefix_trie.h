// Longest-prefix-match radix trie mapping CIDR prefixes to values.
//
// Used for routed-block lookups and origin-AS attribution: the analyses in
// §3 and §6 aggregate amplifier and victim IPs at the routed-block and AS
// levels, which requires longest-prefix matching over the synthetic registry.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "net/ipv4.h"

namespace gorilla::net {

/// Binary (one bit per level) path-walked trie. Insertion is O(prefix
/// length); lookup walks at most 32 nodes. Values are stored by copy.
template <typename T>
class PrefixTrie {
 public:
  PrefixTrie() : root_(std::make_unique<Node>()) {}

  /// Inserts or replaces the value at an exact prefix.
  void insert(const Prefix& prefix, T value) {
    Node* node = root_.get();
    const std::uint32_t bits = prefix.base().value();
    for (int depth = 0; depth < prefix.length(); ++depth) {
      const int bit = (bits >> (31 - depth)) & 1;
      auto& child = node->children[bit];
      if (!child) child = std::make_unique<Node>();
      node = child.get();
    }
    if (!node->value.has_value()) ++size_;
    node->value = std::move(value);
  }

  /// Longest-prefix match; nullopt when no covering prefix exists.
  [[nodiscard]] std::optional<T> lookup(Ipv4Address addr) const {
    const Node* node = root_.get();
    std::optional<T> best = node->value;
    const std::uint32_t bits = addr.value();
    for (int depth = 0; depth < 32 && node; ++depth) {
      const int bit = (bits >> (31 - depth)) & 1;
      node = node->children[bit].get();
      if (node && node->value.has_value()) best = node->value;
    }
    return best;
  }

  /// The most specific covering *prefix* itself (with its value).
  [[nodiscard]] std::optional<std::pair<Prefix, T>> lookup_entry(
      Ipv4Address addr) const {
    const Node* node = root_.get();
    std::optional<std::pair<Prefix, T>> best;
    if (node->value.has_value()) best = {Prefix{addr, 0}, *node->value};
    const std::uint32_t bits = addr.value();
    for (int depth = 0; depth < 32 && node; ++depth) {
      const int bit = (bits >> (31 - depth)) & 1;
      node = node->children[bit].get();
      if (node && node->value.has_value())
        best = {Prefix{addr, depth + 1}, *node->value};
    }
    return best;
  }

  /// Exact-prefix value; nullopt unless that exact prefix was inserted.
  [[nodiscard]] std::optional<T> exact(const Prefix& prefix) const {
    const Node* node = root_.get();
    const std::uint32_t bits = prefix.base().value();
    for (int depth = 0; depth < prefix.length(); ++depth) {
      const int bit = (bits >> (31 - depth)) & 1;
      node = node->children[bit].get();
      if (!node) return std::nullopt;
    }
    return node->value;
  }

  /// Number of distinct prefixes stored.
  [[nodiscard]] std::size_t size() const noexcept { return size_; }

  /// Visits every (prefix, value) pair in lexicographic (DFS) order.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    walk(root_.get(), 0u, 0, fn);
  }

 private:
  struct Node {
    std::optional<T> value;
    std::unique_ptr<Node> children[2];
  };

  template <typename Fn>
  static void walk(const Node* node, std::uint32_t bits, int depth, Fn& fn) {
    if (!node) return;
    if (node->value.has_value()) {
      fn(Prefix{Ipv4Address{bits}, depth}, *node->value);
    }
    if (depth == 32) return;
    walk(node->children[0].get(), bits, depth + 1, fn);
    walk(node->children[1].get(), bits | (1u << (31 - depth)), depth + 1, fn);
  }

  std::unique_ptr<Node> root_;
  std::size_t size_ = 0;
};

}  // namespace gorilla::net
