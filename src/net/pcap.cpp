#include "net/pcap.h"

#include <array>

#include "util/bytes.h"

namespace gorilla::net {

namespace {

/// Locally-administered MAC derived from an IPv4 address.
void put_mac_for(util::ByteWriter& w, Ipv4Address a) {
  w.u8(0x02);  // locally administered, unicast
  w.u8(0x00);
  w.u8(a.octet(0));
  w.u8(a.octet(1));
  w.u8(a.octet(2));
  w.u8(a.octet(3));
}

}  // namespace

std::vector<std::uint8_t> to_ethernet_frame(const UdpPacket& packet) {
  std::vector<std::uint8_t> frame;
  const std::size_t udp_len = kUdpHeaderBytes + packet.payload.size();
  const std::size_t ip_len = kIpv4HeaderBytes + udp_len;
  frame.reserve(kEthernetHeaderBytes + ip_len);
  util::ByteWriter w(frame);

  // Ethernet header.
  put_mac_for(w, packet.dst);
  put_mac_for(w, packet.src);
  w.u16be(0x0800);  // EtherType IPv4

  // IPv4 header (20 bytes, no options).
  const std::size_t ip_start = w.size();
  w.u8(0x45);  // version 4, IHL 5
  w.u8(0x00);  // DSCP/ECN
  w.u16be(static_cast<std::uint16_t>(ip_len));
  w.u16be(0x0000);  // identification
  w.u16be(0x4000);  // don't fragment
  w.u8(packet.ttl);
  w.u8(17);    // protocol UDP
  w.u16be(0);  // checksum placeholder
  w.u32be(packet.src.value());
  w.u32be(packet.dst.value());
  const std::uint16_t ip_checksum =
      internet_checksum(w.written().subspan(ip_start, kIpv4HeaderBytes));
  w.patch_u16be(ip_start + 10, ip_checksum);

  // UDP header (checksum 0 = not computed, legal for IPv4).
  w.u16be(packet.src_port);
  w.u16be(packet.dst_port);
  w.u16be(static_cast<std::uint16_t>(udp_len));
  w.u16be(0);
  w.bytes(packet.payload);
  return frame;
}

std::optional<UdpPacket> from_ethernet_frame(
    std::span<const std::uint8_t> frame) {
  if (frame.size() < kEthernetHeaderBytes + kIpv4HeaderBytes +
                         kUdpHeaderBytes) {
    return std::nullopt;
  }
  util::ByteReader eth(frame);
  eth.skip(12);  // destination + source MAC
  if (eth.u16be() != 0x0800) return std::nullopt;  // EtherType must be IPv4

  const auto ip = frame.subspan(kEthernetHeaderBytes);
  util::ByteReader r(ip);
  const std::uint8_t ver_ihl = r.u8();
  if ((ver_ihl >> 4) != 4) return std::nullopt;
  const std::size_t ihl = static_cast<std::size_t>(ver_ihl & 0x0f) * 4;
  if (ihl < kIpv4HeaderBytes || ip.size() < ihl + kUdpHeaderBytes) {
    return std::nullopt;
  }
  r.skip(1);  // DSCP/ECN
  const std::uint16_t total_len = r.u16be();
  if (total_len < ihl + kUdpHeaderBytes || total_len > ip.size()) {
    return std::nullopt;
  }
  r.skip(4);  // identification + flags/fragment offset
  UdpPacket packet;
  packet.ttl = r.u8();
  if (r.u8() != 17) return std::nullopt;  // not UDP
  r.skip(2);                              // header checksum (unverified)
  packet.src = Ipv4Address{r.u32be()};
  packet.dst = Ipv4Address{r.u32be()};
  r.skip(ihl - kIpv4HeaderBytes);  // IP options

  packet.src_port = r.u16be();
  packet.dst_port = r.u16be();
  const std::uint16_t udp_len = r.u16be();
  if (udp_len < kUdpHeaderBytes || udp_len > ip.size() - ihl) {
    return std::nullopt;
  }
  r.skip(2);  // UDP checksum (0 = not computed)
  const auto payload = r.take(udp_len - kUdpHeaderBytes);
  if (!r.ok()) return std::nullopt;
  packet.payload.assign(payload.begin(), payload.end());
  return packet;
}

PcapWriter::PcapWriter(std::ostream& out) : out_(out) {
  std::vector<std::uint8_t> header;
  header.reserve(kPcapFileHeaderBytes);
  util::ByteWriter w(header);
  w.u32le(kPcapMagic);
  w.u16le(kPcapVersionMajor);
  w.u16le(kPcapVersionMinor);
  w.u32le(0);      // thiszone
  w.u32le(0);      // sigfigs
  w.u32le(65535);  // snaplen
  w.u32le(kLinkTypeEthernet);
  ok_ = util::write_all(out_, header);
}

std::size_t PcapWriter::write(const UdpPacket& packet) {
  const auto frame = to_ethernet_frame(packet);
  std::vector<std::uint8_t> record;
  record.reserve(kPcapRecordHeaderBytes + frame.size());
  util::ByteWriter w(record);
  w.u32le(static_cast<std::uint32_t>(packet.timestamp));  // ts_sec
  w.u32le(0);                                             // ts_usec
  w.u32le(static_cast<std::uint32_t>(frame.size()));      // incl_len
  w.u32le(static_cast<std::uint32_t>(frame.size()));      // orig_len
  w.bytes(frame);
  ok_ = util::write_all(out_, record) && ok_;
  ++packets_;
  return record.size();
}

PcapReader::PcapReader(std::istream& in) : in_(in) {
  std::array<std::uint8_t, kPcapFileHeaderBytes> header{};
  valid_ = util::read_exact(in_, header);
  if (valid_) {
    util::ByteReader r(header);
    const std::uint32_t magic = r.u32le();
    r.skip(16);  // version, thiszone, sigfigs, snaplen
    const std::uint32_t linktype = r.u32le();
    valid_ = r.ok() && magic == kPcapMagic && linktype == kLinkTypeEthernet;
  }
}

std::optional<UdpPacket> PcapReader::next() {
  if (!valid_) return std::nullopt;
  for (;;) {
    std::array<std::uint8_t, kPcapRecordHeaderBytes> rec{};
    if (!util::read_exact(in_, rec)) {
      return std::nullopt;  // clean end of stream
    }
    util::ByteReader r(rec);
    const std::uint32_t ts_sec = r.u32le();
    r.skip(4);  // ts_usec
    const std::uint32_t incl_len = r.u32le();
    if (incl_len > 256 * 1024) {  // implausible: corrupt record
      valid_ = false;
      return std::nullopt;
    }
    std::vector<std::uint8_t> frame(incl_len);
    if (!util::read_exact(in_, frame)) {
      valid_ = false;  // record shorter than its declared incl_len
      return std::nullopt;
    }
    if (auto packet = from_ethernet_frame(frame)) {
      packet->timestamp = static_cast<util::SimTime>(ts_sec);
      ++packets_;
      return packet;
    }
    ++skipped_;
  }
}

}  // namespace gorilla::net
