#include "net/pcap.h"

#include <array>
#include <cstring>

namespace gorilla::net {

namespace {

// Little-endian writers for the pcap file/record headers (the capture
// machine's byte order; kPcapMagic identifies it to readers).
void put_le16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_le32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 24));
}

std::uint16_t get_le16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}

std::uint32_t get_le32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

/// Locally-administered MAC derived from an IPv4 address.
void put_mac_for(std::vector<std::uint8_t>& out, Ipv4Address a) {
  out.push_back(0x02);  // locally administered, unicast
  out.push_back(0x00);
  out.push_back(a.octet(0));
  out.push_back(a.octet(1));
  out.push_back(a.octet(2));
  out.push_back(a.octet(3));
}

}  // namespace

std::vector<std::uint8_t> to_ethernet_frame(const UdpPacket& packet) {
  std::vector<std::uint8_t> frame;
  const std::size_t udp_len = kUdpHeaderBytes + packet.payload.size();
  const std::size_t ip_len = kIpv4HeaderBytes + udp_len;
  frame.reserve(kEthernetHeaderBytes + ip_len);

  // Ethernet header.
  put_mac_for(frame, packet.dst);
  put_mac_for(frame, packet.src);
  frame.push_back(0x08);  // EtherType IPv4
  frame.push_back(0x00);

  // IPv4 header (20 bytes, no options).
  const std::size_t ip_start = frame.size();
  frame.push_back(0x45);  // version 4, IHL 5
  frame.push_back(0x00);  // DSCP/ECN
  put_u16(frame, static_cast<std::uint16_t>(ip_len));
  put_u16(frame, 0x0000);  // identification
  put_u16(frame, 0x4000);  // don't fragment
  frame.push_back(packet.ttl);
  frame.push_back(17);  // protocol UDP
  put_u16(frame, 0);    // checksum placeholder
  put_u32(frame, packet.src.value());
  put_u32(frame, packet.dst.value());
  const std::uint16_t ip_checksum = internet_checksum(
      std::span<const std::uint8_t>(frame).subspan(ip_start,
                                                   kIpv4HeaderBytes));
  frame[ip_start + 10] = static_cast<std::uint8_t>(ip_checksum >> 8);
  frame[ip_start + 11] = static_cast<std::uint8_t>(ip_checksum);

  // UDP header (checksum 0 = not computed, legal for IPv4).
  put_u16(frame, packet.src_port);
  put_u16(frame, packet.dst_port);
  put_u16(frame, static_cast<std::uint16_t>(udp_len));
  put_u16(frame, 0);
  frame.insert(frame.end(), packet.payload.begin(), packet.payload.end());
  return frame;
}

std::optional<UdpPacket> from_ethernet_frame(
    std::span<const std::uint8_t> frame) {
  if (frame.size() < kEthernetHeaderBytes + kIpv4HeaderBytes +
                         kUdpHeaderBytes) {
    return std::nullopt;
  }
  // EtherType must be IPv4.
  if (frame[12] != 0x08 || frame[13] != 0x00) return std::nullopt;
  const auto ip = frame.subspan(kEthernetHeaderBytes);
  if ((ip[0] >> 4) != 4) return std::nullopt;
  const std::size_t ihl = static_cast<std::size_t>(ip[0] & 0x0f) * 4;
  if (ihl < kIpv4HeaderBytes || ip.size() < ihl + kUdpHeaderBytes) {
    return std::nullopt;
  }
  if (ip[9] != 17) return std::nullopt;  // not UDP
  const std::uint16_t total_len = get_u16(ip, 2);
  if (total_len < ihl + kUdpHeaderBytes || total_len > ip.size()) {
    return std::nullopt;
  }
  UdpPacket packet;
  packet.ttl = ip[8];
  packet.src = Ipv4Address{get_u32(ip, 12)};
  packet.dst = Ipv4Address{get_u32(ip, 16)};
  const auto udp = ip.subspan(ihl);
  packet.src_port = get_u16(udp, 0);
  packet.dst_port = get_u16(udp, 2);
  const std::uint16_t udp_len = get_u16(udp, 4);
  if (udp_len < kUdpHeaderBytes || udp_len > udp.size()) return std::nullopt;
  packet.payload.assign(udp.begin() + kUdpHeaderBytes,
                        udp.begin() + udp_len);
  return packet;
}

PcapWriter::PcapWriter(std::ostream& out) : out_(out) {
  std::vector<std::uint8_t> header;
  put_le32(header, kPcapMagic);
  put_le16(header, kPcapVersionMajor);
  put_le16(header, kPcapVersionMinor);
  put_le32(header, 0);          // thiszone
  put_le32(header, 0);          // sigfigs
  put_le32(header, 65535);      // snaplen
  put_le32(header, kLinkTypeEthernet);
  out_.write(reinterpret_cast<const char*>(header.data()),
             static_cast<std::streamsize>(header.size()));
}

std::size_t PcapWriter::write(const UdpPacket& packet) {
  const auto frame = to_ethernet_frame(packet);
  std::vector<std::uint8_t> record;
  record.reserve(16 + frame.size());
  put_le32(record, static_cast<std::uint32_t>(packet.timestamp));  // ts_sec
  put_le32(record, 0);                                             // ts_usec
  put_le32(record, static_cast<std::uint32_t>(frame.size()));      // incl_len
  put_le32(record, static_cast<std::uint32_t>(frame.size()));      // orig_len
  record.insert(record.end(), frame.begin(), frame.end());
  out_.write(reinterpret_cast<const char*>(record.data()),
             static_cast<std::streamsize>(record.size()));
  ++packets_;
  return record.size();
}

PcapReader::PcapReader(std::istream& in) : in_(in) {
  std::array<std::uint8_t, 24> header{};
  in_.read(reinterpret_cast<char*>(header.data()), header.size());
  valid_ = in_.gcount() == static_cast<std::streamsize>(header.size()) &&
           get_le32(header.data()) == kPcapMagic &&
           get_le32(header.data() + 20) == kLinkTypeEthernet;
}

std::optional<UdpPacket> PcapReader::next() {
  if (!valid_) return std::nullopt;
  for (;;) {
    std::array<std::uint8_t, 16> rec{};
    in_.read(reinterpret_cast<char*>(rec.data()), rec.size());
    if (in_.gcount() != static_cast<std::streamsize>(rec.size())) {
      return std::nullopt;  // clean end of stream
    }
    const std::uint32_t ts_sec = get_le32(rec.data());
    const std::uint32_t incl_len = get_le32(rec.data() + 8);
    if (incl_len > 256 * 1024) {  // implausible: corrupt record
      valid_ = false;
      return std::nullopt;
    }
    std::vector<std::uint8_t> frame(incl_len);
    in_.read(reinterpret_cast<char*>(frame.data()), incl_len);
    if (in_.gcount() != static_cast<std::streamsize>(incl_len)) {
      valid_ = false;
      return std::nullopt;
    }
    if (auto packet = from_ethernet_frame(frame)) {
      packet->timestamp = static_cast<util::SimTime>(ts_sec);
      ++packets_;
      return packet;
    }
    ++skipped_;
  }
}

}  // namespace gorilla::net
