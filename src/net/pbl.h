// Policy Block List — Spamhaus PBL analogue.
//
// The paper labels amplifier and victim IPs as "end hosts" when they appear
// on the Spamhaus PBL, which lists address space whose hosts are end-user
// (residential/dynamic) machines (§3.1, Table 1). Our analogue is built from
// the synthetic registry's residential block flags, with per-block listing
// noise so coverage is imperfect, as in reality.
#pragma once

#include <cstdint>

#include "net/ipv4.h"
#include "net/prefix_trie.h"
#include "net/registry.h"
#include "util/rng.h"

namespace gorilla::net {

struct PblConfig {
  std::uint64_t seed = util::Rng::kDefaultSeed ^ 0x9b1ULL;
  /// Probability a residential block is actually listed.
  double residential_listing_rate = 0.95;
  /// Probability a non-residential block is (wrongly or partially) listed.
  double false_listing_rate = 0.01;
};

/// Immutable snapshot of listed prefixes (the paper uses the April 18 2014
/// snapshot for all samples; we mirror that single-snapshot semantic).
class PolicyBlockList {
 public:
  PolicyBlockList(const Registry& registry, const PblConfig& config = {});

  /// True when the address falls in PBL-listed (end-user) space.
  [[nodiscard]] bool is_end_host(Ipv4Address a) const {
    return trie_.lookup(a).value_or(false);
  }

  [[nodiscard]] std::size_t listed_prefixes() const noexcept {
    return trie_.size();
  }

 private:
  PrefixTrie<bool> trie_;
};

}  // namespace gorilla::net
