#include "net/packet.h"

#include <stdexcept>

namespace gorilla::net {

std::uint16_t internet_checksum(std::span<const std::uint8_t> data) noexcept {
  std::uint64_t sum = 0;
  std::size_t i = 0;
  for (; i + 1 < data.size(); i += 2) {
    sum += (std::uint16_t{data[i]} << 8) | data[i + 1];
  }
  if (i < data.size()) sum += std::uint16_t{data[i]} << 8;
  while (sum >> 16) sum = (sum & 0xffff) + (sum >> 16);
  return static_cast<std::uint16_t>(~sum);
}

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 24));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v));
}

std::uint16_t get_u16(std::span<const std::uint8_t> in, std::size_t offset) {
  if (offset + 2 > in.size())
    throw std::out_of_range("get_u16: truncated buffer");
  return static_cast<std::uint16_t>((std::uint16_t{in[offset]} << 8) |
                                    in[offset + 1]);
}

std::uint32_t get_u32(std::span<const std::uint8_t> in, std::size_t offset) {
  if (offset + 4 > in.size())
    throw std::out_of_range("get_u32: truncated buffer");
  return (std::uint32_t{in[offset]} << 24) | (std::uint32_t{in[offset + 1]} << 16) |
         (std::uint32_t{in[offset + 2]} << 8) | in[offset + 3];
}

}  // namespace gorilla::net
