#include "net/packet.h"

#include "util/bytes.h"

namespace gorilla::net {

std::uint16_t internet_checksum(std::span<const std::uint8_t> data) noexcept {
  util::ByteReader r(data);
  std::uint64_t sum = 0;
  while (r.remaining() >= 2) sum += r.u16be();
  if (r.remaining() == 1) sum += std::uint32_t{r.u8()} << 8;
  while (sum >> 16) sum = (sum & 0xffff) + (sum >> 16);
  return static_cast<std::uint16_t>(~sum);
}

}  // namespace gorilla::net
