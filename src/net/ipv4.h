// IPv4 addresses and CIDR prefixes.
#pragma once

#include <compare>
#include <cstdint>
#include <optional>
#include <string>

namespace gorilla::net {

/// An IPv4 address as a host-order 32-bit value (value type, totally ordered).
class Ipv4Address {
 public:
  constexpr Ipv4Address() noexcept = default;
  constexpr explicit Ipv4Address(std::uint32_t host_order) noexcept
      : value_(host_order) {}
  constexpr Ipv4Address(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                        std::uint8_t d) noexcept
      : value_((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
               (std::uint32_t{c} << 8) | d) {}

  [[nodiscard]] constexpr std::uint32_t value() const noexcept { return value_; }

  [[nodiscard]] constexpr std::uint8_t octet(int i) const noexcept {
    return static_cast<std::uint8_t>(value_ >> (8 * (3 - i)));
  }

  friend constexpr auto operator<=>(Ipv4Address, Ipv4Address) noexcept = default;

 private:
  std::uint32_t value_ = 0;
};

/// "a.b.c.d".
[[nodiscard]] std::string to_string(Ipv4Address addr);

/// Parse dotted-quad; nullopt on malformed input.
[[nodiscard]] std::optional<Ipv4Address> parse_ipv4(const std::string& s);

/// A CIDR prefix. Invariant: host bits below the prefix length are zero.
class Prefix {
 public:
  constexpr Prefix() noexcept = default;

  /// Canonicalizes: masks off host bits. length must be 0..32.
  constexpr Prefix(Ipv4Address base, int length) noexcept
      : base_(Ipv4Address{length == 0 ? 0u : (base.value() & mask_for(length))}),
        length_(length) {}

  [[nodiscard]] constexpr Ipv4Address base() const noexcept { return base_; }
  [[nodiscard]] constexpr int length() const noexcept { return length_; }

  [[nodiscard]] constexpr bool contains(Ipv4Address a) const noexcept {
    return length_ == 0 || (a.value() & mask_for(length_)) == base_.value();
  }

  [[nodiscard]] constexpr bool contains(const Prefix& other) const noexcept {
    return other.length_ >= length_ && contains(other.base_);
  }

  /// Number of addresses covered (2^(32-length)); 2^32 reported as 0x100000000.
  [[nodiscard]] constexpr std::uint64_t size() const noexcept {
    return std::uint64_t{1} << (32 - length_);
  }

  /// The i-th address inside the prefix (i < size()).
  [[nodiscard]] constexpr Ipv4Address at(std::uint64_t i) const noexcept {
    return Ipv4Address{base_.value() + static_cast<std::uint32_t>(i)};
  }

  friend constexpr auto operator<=>(const Prefix&, const Prefix&) noexcept =
      default;

 private:
  static constexpr std::uint32_t mask_for(int length) noexcept {
    return length == 0 ? 0u : ~std::uint32_t{0} << (32 - length);
  }

  Ipv4Address base_{};
  int length_ = 0;
};

/// "a.b.c.d/len".
[[nodiscard]] std::string to_string(const Prefix& p);

/// Parse "a.b.c.d/len"; nullopt on malformed input or length out of range.
[[nodiscard]] std::optional<Prefix> parse_prefix(const std::string& s);

/// The /24 containing an address — the aggregation level used throughout §3/§6.
[[nodiscard]] constexpr Prefix slash24_of(Ipv4Address a) noexcept {
  return Prefix{a, 24};
}

}  // namespace gorilla::net
