// IPv6 addresses and prefixes — enough surface for the §5.1 IPv6-darknet
// finding (covering prefixes for four RIRs; *no* NTP scanning observed).
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <optional>
#include <string>

#include "util/bytes.h"

namespace gorilla::net {

/// A 128-bit IPv6 address (big-endian byte array; value type).
class Ipv6Address {
 public:
  constexpr Ipv6Address() noexcept = default;
  constexpr explicit Ipv6Address(
      const std::array<std::uint8_t, 16>& bytes) noexcept
      : bytes_(bytes) {}

  [[nodiscard]] constexpr const std::array<std::uint8_t, 16>& bytes()
      const noexcept {
    return bytes_;
  }

  /// The i-th 16-bit group (0..7), host order.
  [[nodiscard]] constexpr std::uint16_t group(int i) const noexcept {
    return util::load_u16be(bytes_, static_cast<std::size_t>(i) * 2)
        .value_or(0);
  }

  friend constexpr auto operator<=>(const Ipv6Address&,
                                    const Ipv6Address&) noexcept = default;

 private:
  std::array<std::uint8_t, 16> bytes_{};
};

/// Canonical (RFC 5952) textual form: lowercase hex, longest zero run
/// compressed with "::".
[[nodiscard]] std::string to_string(const Ipv6Address& a);

/// Parses standard textual IPv6 (with or without "::"); no embedded-IPv4
/// or zone-id forms. nullopt on malformed input.
[[nodiscard]] std::optional<Ipv6Address> parse_ipv6(const std::string& s);

/// An IPv6 CIDR prefix. Invariant: host bits below the length are zero.
class Ipv6Prefix {
 public:
  constexpr Ipv6Prefix() noexcept = default;
  Ipv6Prefix(const Ipv6Address& base, int length) noexcept;

  [[nodiscard]] const Ipv6Address& base() const noexcept { return base_; }
  [[nodiscard]] int length() const noexcept { return length_; }
  [[nodiscard]] bool contains(const Ipv6Address& a) const noexcept;

  friend bool operator==(const Ipv6Prefix&, const Ipv6Prefix&) = default;

 private:
  Ipv6Address base_{};
  int length_ = 0;
};

/// "base/len".
[[nodiscard]] std::string to_string(const Ipv6Prefix& p);

/// Parse "addr/len"; nullopt when malformed or length outside 0..128.
[[nodiscard]] std::optional<Ipv6Prefix> parse_ipv6_prefix(
    const std::string& s);

}  // namespace gorilla::net
