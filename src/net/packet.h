// UDP datagram value type used across the simulator and protocol stacks.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "net/ethernet.h"
#include "net/ipv4.h"
#include "util/time.h"

namespace gorilla::net {

/// Well-known ports used throughout the study.
inline constexpr std::uint16_t kNtpPort = 123;
inline constexpr std::uint16_t kDnsPort = 53;

/// A UDP datagram with just enough IP metadata for the analyses: addresses,
/// ports, TTL (used for OS inference in §7.2), timestamp, and payload.
struct UdpPacket {
  Ipv4Address src;
  Ipv4Address dst;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint8_t ttl = 64;
  util::SimTime timestamp = 0;
  std::vector<std::uint8_t> payload;

  /// Length of the IP datagram (IP + UDP headers + payload).
  [[nodiscard]] std::uint64_t ip_length() const noexcept {
    return kIpv4HeaderBytes + kUdpHeaderBytes + payload.size();
  }

  /// On-wire bytes this packet occupies (min-frame + preamble + IPG model).
  [[nodiscard]] std::uint64_t on_wire_bytes() const noexcept {
    return on_wire_bytes_for_ip(ip_length());
  }
};

/// RFC 1071 Internet checksum over a byte span (used by the wire-format
/// serializers; pads odd lengths with a zero byte).
///
/// Byte-level decoding lives in util/bytes.h (ByteReader/ByteWriter); the
/// ad-hoc get_u16/put_u32 helpers this header used to export are gone —
/// every parser now goes through the checked cursor API.
[[nodiscard]] std::uint16_t internet_checksum(std::span<const std::uint8_t> data)
    noexcept;

}  // namespace gorilla::net
