#include "scan/prober.h"

#include "net/packet.h"
#include "ntp/mode6.h"
#include "ntp/sysinfo.h"

namespace gorilla::scan {

namespace {

constexpr std::uint16_t kProbeSourcePort = 57915;  // the port in Table 3a

}  // namespace

Prober::Prober(sim::World& world, net::Ipv4Address source,
               ntp::Implementation probe_impl)
    : world_(world), source_(source), probe_impl_(probe_impl) {}

util::SimTime Prober::sample_time(int week) noexcept {
  // Week 0 anchors at 2014-01-10 (sim day 70), probes land at noon UTC.
  return (70 + static_cast<util::SimTime>(week) * 7) * util::kSecondsPerDay +
         12 * util::kSecondsPerHour;
}

void Prober::apply_due_remediation(int week) {
  if (week <= remediation_applied_week_) return;
  for (const auto ai : world_.amplifier_indices()) {
    const auto& t = world_.servers()[ai];
    if (t.monlist_fix_week >= 0 && t.monlist_fix_week <= week) {
      if (auto* server = world_.detailed(ai)) {
        server->set_monlist_enabled(false);
      }
    }
    if (t.version_fix_week >= 0 && t.version_fix_week <= week) {
      if (auto* server = world_.detailed(ai)) {
        server->set_mode6_enabled(false);
      }
    }
  }
  remediation_applied_week_ = week;
}

MonlistSampleSummary Prober::run_monlist_sample(int week,
                                                const MonlistVisitor& visit) {
  return probe_indices(world_.amplifier_indices(), week, sample_time(week),
                       visit);
}

MonlistSampleSummary Prober::probe_targets(
    const std::vector<std::uint32_t>& server_indices, int week,
    util::SimTime now, const MonlistVisitor& visit) {
  return probe_indices(server_indices, week, now, visit);
}

MonlistSampleSummary Prober::probe_indices(
    const std::vector<std::uint32_t>& server_indices, int week,
    util::SimTime now, const MonlistVisitor& visit) {
  apply_due_remediation(week);
  MonlistSampleSummary summary;
  summary.week = week;
  summary.date = util::date_from_sim_time(now);

  const auto request_wire = ntp::serialize(ntp::make_monlist_request(
      probe_impl_, /*authenticated=*/false));

  AmplifierObservation obs;  // reused across visits
  for (const auto ai : server_indices) {
    ++summary.probes_sent;
    // Offline / churned-away targets never see the probe.
    if (!world_.servers()[ai].ever_amplifier) continue;
    if (!world_.reachable(ai, week)) continue;

    auto* server = world_.detailed(ai);
    if (server == nullptr) continue;

    // Apply any ntpd restart since the last sample: the monitor table only
    // remembers clients since the restart (§4.2's observation window).
    server->monitor().expire_before(world_.last_restart_before(ai, week, now));

    net::UdpPacket probe;
    probe.src = source_;
    probe.dst = world_.address_at(ai, week);
    probe.src_port = kProbeSourcePort;
    probe.dst_port = net::kNtpPort;
    probe.timestamp = now;
    probe.payload = request_wire;

    const auto response = server->handle(probe, now);
    if (response.total_packets == 0) continue;

    // Reassemble the final table run from the materialized packets.
    std::vector<ntp::Mode7Packet> parsed;
    parsed.reserve(response.packets.size());
    for (const auto& pkt : response.packets) {
      if (auto p = ntp::parse_mode7_packet(pkt.payload)) {
        parsed.push_back(std::move(*p));
      }
    }
    auto table = ntp::reassemble_monlist(parsed);
    if (!table || (parsed.size() == 1 &&
                   parsed.front().error != ntp::Mode7Error::kOk)) {
      ++summary.error_replies;
      continue;  // impl mismatch or refusal: not an amplifier observation
    }

    obs.server_index = ai;
    obs.address = probe.dst;
    obs.response_packets = response.total_packets;
    obs.response_udp_bytes = response.total_udp_payload_bytes;
    obs.response_wire_bytes = response.total_on_wire_bytes;
    obs.table = std::move(*table);
    obs.probe_time = now;
    ++summary.responders;
    visit(obs);
  }
  return summary;
}

VersionSampleSummary Prober::run_version_sample(int vweek,
                                                const VersionVisitor& visit) {
  const int week = vweek + 6;  // version passes began 2014-02-21
  apply_due_remediation(week);
  VersionSampleSummary summary;
  summary.week = vweek;
  summary.date = util::date_from_sim_time(sample_time(week));
  const util::SimTime now = sample_time(week);

  const auto request_wire =
      ntp::serialize(ntp::make_version_request(/*sequence=*/1));

  VersionObservation obs;
  const auto& traits = world_.servers();
  for (std::uint32_t i = 0; i < traits.size(); ++i) {
    ++summary.probes_sent;
    if (!world_.responds_version(i, week)) continue;
    ++summary.responders_total;

    auto* server = world_.detailed(i);
    if (server == nullptr) continue;  // population-tier: counted only

    net::UdpPacket probe;
    probe.src = source_;
    probe.dst = world_.address_at(i, week);
    probe.src_port = kProbeSourcePort;
    probe.dst_port = net::kNtpPort;
    probe.timestamp = now;
    probe.payload = request_wire;

    const auto response = server->handle(probe, now);
    if (response.total_packets == 0) {
      --summary.responders_total;  // restricted after all
      continue;
    }

    std::vector<ntp::ControlPacket> fragments;
    for (const auto& pkt : response.packets) {
      if (auto p = ntp::parse_control_packet(pkt.payload)) {
        fragments.push_back(std::move(*p));
      }
    }
    const auto text = ntp::reassemble_readvar(fragments);
    if (!text) continue;
    const auto vars = ntp::parse_variable_list(*text);

    obs.server_index = i;
    obs.address = probe.dst;
    obs.response_packets = response.total_packets;
    obs.response_wire_bytes = response.total_on_wire_bytes;
    obs.system = vars.count("system") ? vars.at("system") : "";
    obs.version = vars.count("version") ? vars.at("version") : "";
    obs.stratum = vars.count("stratum") ? std::stoi(vars.at("stratum")) : 0;
    obs.probe_time = now;
    ++summary.responders_detailed;
    visit(obs);
  }
  return summary;
}

}  // namespace gorilla::scan
