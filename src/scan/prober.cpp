#include "scan/prober.h"

#include <cstdlib>

#include "net/packet.h"
#include "ntp/mode6.h"
#include "ntp/sysinfo.h"
// Published downward interface (DESIGN.md §3f): probe observations are
// emitted into the study event vocabulary.
#include "study/events.h"  // NOLINT(layer-break)

namespace gorilla::scan {

namespace {

constexpr std::uint16_t kProbeSourcePort = 57915;  // the port in Table 3a

/// Parses an integer variable value without throwing — garbled replies can
/// turn "stratum=3" into arbitrary bytes, which std::stoi would reject hard.
/// Failure is signaled through the caller-chosen fallback, so the function
/// is total by design rather than optional-returning.
int parse_int_or(const std::string& text, int fallback) noexcept {  // NOLINT(parse-optional)
  if (text.empty()) return fallback;
  char* end = nullptr;
  const long v = std::strtol(text.c_str(), &end, 10);
  if (end == text.c_str()) return fallback;
  if (v < -0x7fffffffL || v > 0x7fffffffL) return fallback;
  return static_cast<int>(v);
}

}  // namespace

Prober::Prober(sim::World& world, net::Ipv4Address source,
               ntp::Implementation probe_impl,
               const sim::ImpairmentConfig& impairment,
               const ProbePolicy& policy)
    : world_(world),
      source_(source),
      probe_impl_(probe_impl),
      impairment_(impairment),
      policy_(policy) {}

void Prober::roll_window(int week) {
  if (week == window_week_) return;
  window_week_ = week;
  responses_used_.clear();
}

bool Prober::consume_rate_budget(std::uint32_t server_index) {
  if (!impairment_.enabled() ||
      impairment_.config().rate_limit_per_window == 0) {
    return false;
  }
  if (!impairment_.is_rate_limiter(server_index)) return false;
  auto& used = responses_used_[server_index];
  if (impairment_.rate_limited(server_index, used)) return true;
  ++used;
  return false;
}

util::SimTime Prober::sample_time(int week) noexcept {
  // Week 0 anchors at 2014-01-10 (sim day 70), probes land at noon UTC.
  return (70 + static_cast<util::SimTime>(week) * 7) * util::kSecondsPerDay +
         12 * util::kSecondsPerHour;
}

void Prober::apply_due_remediation(int week) {
  if (week <= remediation_applied_week_) return;
  for (const auto ai : world_.amplifier_indices()) {
    const auto& t = world_.servers()[ai];
    if (t.monlist_fix_week >= 0 && t.monlist_fix_week <= week) {
      if (auto* server = world_.detailed(ai)) {
        server->set_monlist_enabled(false);
      }
    }
    if (t.version_fix_week >= 0 && t.version_fix_week <= week) {
      if (auto* server = world_.detailed(ai)) {
        server->set_mode6_enabled(false);
      }
    }
  }
  remediation_applied_week_ = week;
}

MonlistSampleSummary Prober::run_monlist_sample(int week,
                                                const MonlistVisitor& visit) {
  return probe_indices(world_.amplifier_indices(), week, sample_time(week),
                       visit);
}

MonlistSampleSummary Prober::run_monlist_sample(int week,
                                                study::EventSink& sink) {
  sink.on_sample_begin(week, util::date_from_sim_time(sample_time(week)));
  const auto summary = probe_indices(
      world_.amplifier_indices(), week, sample_time(week),
      [week, &sink](const AmplifierObservation& obs) {
        sink.on_probe_observation(week, obs);
      });
  sink.on_monlist_summary(summary);
  sink.on_sample_end(week);
  return summary;
}

MonlistSampleSummary Prober::probe_targets(
    const std::vector<std::uint32_t>& server_indices, int week,
    util::SimTime now, const MonlistVisitor& visit) {
  return probe_indices(server_indices, week, now, visit);
}

bool Prober::probe_one(std::uint32_t server_index, int week, util::SimTime now,
                       const std::vector<std::uint8_t>& request_wire,
                       int max_attempts, MonlistSampleSummary& summary,
                       AmplifierObservation& obs) {
  const auto ai = server_index;
  ++summary.probes_sent;
  // Offline / churned-away targets never see the probe.
  if (!world_.servers()[ai].ever_amplifier) return false;
  if (!world_.reachable(ai, week)) return false;

  auto* server = world_.detailed(ai);
  if (server == nullptr) return false;

  // Apply any ntpd restart since the last sample: the monitor table only
  // remembers clients since the restart (§4.2's observation window).
  server->monitor().expire_before(world_.last_restart_before(ai, week, now));

  net::UdpPacket probe;
  probe.src = source_;
  probe.dst = world_.address_at(ai, week);
  probe.src_port = kProbeSourcePort;
  probe.dst_port = net::kNtpPort;
  probe.payload = request_wire;

  bool observed = false;
  bool was_rate_limited = false;
  bool impairment_blocked = false;
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    if (attempt > 0) ++summary.retries;
    const util::SimTime when = now + policy_.attempt_offset(attempt);
    probe.timestamp = when;

    const auto fate = impairment_.request_fate(ai, week, attempt);
    if (fate == sim::ImpairmentLayer::Fate::kRequestLost ||
        fate == sim::ImpairmentLayer::Fate::kUnreachable) {
      impairment_blocked = true;  // server never saw it — retry
      continue;
    }

    const auto response = server->handle(probe, when);
    if (response.total_packets == 0) {
      impairment_blocked = false;
      break;  // genuine restriction: deterministic, retrying is pointless
    }
    if (fate == sim::ImpairmentLayer::Fate::kSilent) {
      impairment_blocked = true;  // whole reply lost on the return path
      continue;
    }
    if (consume_rate_budget(ai)) {
      was_rate_limited = true;
      impairment_blocked = false;
      // A KoD tells a well-behaved client to stop; silence invites
      // retries that the limiter will keep eating.
      if (impairment_.config().rate_limit_kod) break;
      continue;
    }

    sim::ImpairmentLayer::Damage damage;
    std::uint64_t delivered_packets = response.total_packets;
    std::uint64_t delivered_udp = response.total_udp_payload_bytes;
    std::uint64_t delivered_wire = response.total_on_wire_bytes;
    std::vector<net::UdpPacket> packets = response.packets;
    if (impairment_.enabled()) {
      damage = impairment_.degrade_response(ai, week, attempt, packets);
      // The materialized prefix was damaged exactly; the unmaterialized
      // remainder of a mega reply is thinned in aggregate so totals stay
      // deterministic without ever existing in memory.
      std::uint64_t mat_udp = 0, mat_wire = 0;
      for (const auto& pkt : response.packets) {
        mat_udp += pkt.payload.size();
        mat_wire += pkt.on_wire_bytes();
      }
      const std::uint64_t mat = response.packets.size();
      const std::uint64_t rem = response.total_packets - mat;
      const std::uint64_t rem_kept =
          impairment_.delivered_responses(ai, week, rem);
      const double rem_frac =
          rem > 0 ? static_cast<double>(rem_kept) /
                        static_cast<double>(rem)
                  : 0.0;
      delivered_packets =
          (mat - damage.packets_dropped) + rem_kept;
      delivered_udp = (mat_udp - damage.udp_bytes_lost) +
                      static_cast<std::uint64_t>(
                          static_cast<double>(
                              response.total_udp_payload_bytes - mat_udp) *
                          rem_frac);
      delivered_wire = (mat_wire - damage.wire_bytes_lost) +
                       static_cast<std::uint64_t>(
                           static_cast<double>(
                               response.total_on_wire_bytes - mat_wire) *
                           rem_frac);
      if (delivered_packets == 0) {
        impairment_blocked = true;  // everything died in transit — retry
        continue;
      }
    }

    // Reassemble the final table run from the surviving packets.
    std::vector<ntp::Mode7Packet> parsed;
    parsed.reserve(packets.size());
    for (const auto& pkt : packets) {
      if (auto p = ntp::parse_mode7_packet(pkt.payload)) {
        parsed.push_back(std::move(*p));
      }
    }
    auto table = ntp::reassemble_monlist(parsed);
    if (!table || (parsed.size() == 1 &&
                   parsed.front().error != ntp::Mode7Error::kOk)) {
      if (damage.degraded() && parsed.empty()) {
        impairment_blocked = true;  // damage ate the reply — retry
        continue;
      }
      impairment_blocked = false;
      ++summary.error_replies;
      break;  // impl mismatch or refusal: not an amplifier observation
    }

    obs.server_index = ai;
    obs.address = probe.dst;
    obs.response_packets = delivered_packets;
    obs.response_udp_bytes = delivered_udp;
    obs.response_wire_bytes = delivered_wire;
    obs.table = std::move(*table);
    obs.probe_time = when;
    obs.table_partial =
        damage.packets_dropped + damage.packets_truncated > 0;
    obs.attempts = attempt + 1;
    if (obs.table_partial) ++summary.truncated_tables;
    ++summary.responders;
    impairment_blocked = false;
    observed = true;
    break;
  }
  if (was_rate_limited) ++summary.rate_limited;
  if (impairment_blocked) ++summary.probes_lost;
  return observed;
}

MonlistSampleSummary Prober::probe_indices(
    const std::vector<std::uint32_t>& server_indices, int week,
    util::SimTime now, const MonlistVisitor& visit) {
  apply_due_remediation(week);
  roll_window(week);
  MonlistSampleSummary summary;
  summary.week = week;
  summary.date = util::date_from_sim_time(now);

  const auto request_wire = ntp::serialize(ntp::make_monlist_request(
      probe_impl_, /*authenticated=*/false));

  // In a clean network every target gets exactly one packet (the original
  // ONP methodology); retries exist only to ride out impairment.
  const int max_attempts =
      impairment_.enabled() ? policy_.max_retries + 1 : 1;

  // The rate-limit window is the one piece of shared mutable state in a
  // pass (responses_used_); those passes stay on the sequential loop.
  const bool shared_window =
      impairment_.enabled() && impairment_.config().rate_limit_per_window != 0;
  if (executor_ != nullptr && executor_->jobs() > 1 && !shared_window) {
    // Chunks are a fixed size regardless of job count, each target touches
    // only its own server, and chunk results are consumed on this thread in
    // ascending order — so visit order, summary, and every server's monitor
    // table come out bit-identical to the sequential loop.
    struct ChunkResult {
      MonlistSampleSummary partial;
      std::vector<AmplifierObservation> observations;
    };
    constexpr std::size_t kProbeChunk = 512;
    executor_->run_ordered(
        server_indices.size(), kProbeChunk,
        [this, &server_indices, week, now, &request_wire, max_attempts](
            std::size_t begin, std::size_t end) {
          ChunkResult r;
          AmplifierObservation obs;
          for (std::size_t i = begin; i < end; ++i) {
            if (probe_one(server_indices[i], week, now, request_wire,
                          max_attempts, r.partial, obs)) {
              r.observations.push_back(std::move(obs));
            }
          }
          return r;
        },
        [&summary, &visit](ChunkResult r) {
          summary.probes_sent += r.partial.probes_sent;
          summary.responders += r.partial.responders;
          summary.error_replies += r.partial.error_replies;
          summary.probes_lost += r.partial.probes_lost;
          summary.retries += r.partial.retries;
          summary.truncated_tables += r.partial.truncated_tables;
          summary.rate_limited += r.partial.rate_limited;
          for (const auto& obs : r.observations) visit(obs);
        });
    return summary;
  }

  AmplifierObservation obs;  // reused across visits
  for (const auto ai : server_indices) {
    if (probe_one(ai, week, now, request_wire, max_attempts, summary, obs)) {
      visit(obs);
    }
  }
  return summary;
}

VersionSampleSummary Prober::run_version_sample(int vweek,
                                                const VersionVisitor& visit) {
  const int week = vweek + 6;  // version passes began 2014-02-21
  apply_due_remediation(week);
  roll_window(week);
  VersionSampleSummary summary;
  summary.week = vweek;
  summary.date = util::date_from_sim_time(sample_time(week));
  const util::SimTime now = sample_time(week);

  const auto request_wire =
      ntp::serialize(ntp::make_version_request(/*sequence=*/1));

  const int max_attempts =
      impairment_.enabled() ? policy_.max_retries + 1 : 1;

  VersionObservation obs;
  const auto& traits = world_.servers();
  for (std::uint32_t i = 0; i < traits.size(); ++i) {
    ++summary.probes_sent;
    if (!world_.responds_version(i, week)) continue;
    ++summary.responders_total;

    auto* server = world_.detailed(i);
    if (server == nullptr) continue;  // population-tier: counted only

    net::UdpPacket probe;
    probe.src = source_;
    probe.dst = world_.address_at(i, week);
    probe.src_port = kProbeSourcePort;
    probe.dst_port = net::kNtpPort;
    probe.payload = request_wire;

    bool was_rate_limited = false;
    bool impairment_blocked = false;
    for (int attempt = 0; attempt < max_attempts; ++attempt) {
      if (attempt > 0) ++summary.retries;
      const util::SimTime when = now + policy_.attempt_offset(attempt);
      probe.timestamp = when;

      // Decorrelated from the monlist pass's attempts via the salt offset.
      const auto fate = impairment_.request_fate(i, week, attempt + 0x100);
      if (fate == sim::ImpairmentLayer::Fate::kRequestLost ||
          fate == sim::ImpairmentLayer::Fate::kUnreachable) {
        impairment_blocked = true;
        continue;
      }

      const auto response = server->handle(probe, when);
      if (response.total_packets == 0) {
        --summary.responders_total;  // restricted after all
        impairment_blocked = false;
        break;
      }
      if (fate == sim::ImpairmentLayer::Fate::kSilent) {
        impairment_blocked = true;
        continue;
      }
      if (consume_rate_budget(i)) {
        was_rate_limited = true;
        impairment_blocked = false;
        if (impairment_.config().rate_limit_kod) break;
        continue;
      }

      sim::ImpairmentLayer::Damage damage;
      std::vector<net::UdpPacket> packets = response.packets;
      if (impairment_.enabled()) {
        damage =
            impairment_.degrade_response(i, week, attempt + 0x100, packets);
        if (packets.empty()) {
          impairment_blocked = true;
          continue;
        }
      }

      std::vector<ntp::ControlPacket> fragments;
      for (const auto& pkt : packets) {
        if (auto p = ntp::parse_control_packet(pkt.payload)) {
          fragments.push_back(std::move(*p));
        }
      }
      const auto text = ntp::reassemble_readvar(fragments);
      if (!text) {
        if (damage.degraded()) {
          impairment_blocked = true;  // damage broke the reply — retry
          continue;
        }
        impairment_blocked = false;
        break;
      }
      const auto vars = ntp::parse_variable_list(*text);

      obs.server_index = i;
      obs.address = probe.dst;
      obs.response_packets = response.total_packets - damage.packets_dropped;
      obs.response_wire_bytes =
          response.total_on_wire_bytes - damage.wire_bytes_lost;
      obs.system = vars.count("system") ? vars.at("system") : "";
      obs.version = vars.count("version") ? vars.at("version") : "";
      obs.stratum =
          vars.count("stratum") ? parse_int_or(vars.at("stratum"), 0) : 0;
      obs.probe_time = when;
      if (damage.degraded()) ++summary.truncated_tables;
      ++summary.responders_detailed;
      impairment_blocked = false;
      visit(obs);
      break;
    }
    if (was_rate_limited) ++summary.rate_limited;
    if (impairment_blocked) ++summary.probes_lost;
  }
  return summary;
}

}  // namespace gorilla::scan
