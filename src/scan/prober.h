// The OpenNTPProject-style Internet-wide prober (§3).
//
// Starting 2014-01-10 the ONP sent every IPv4 address a single
// MON_GETLIST_1 packet each week (and, from 2014-02-21, a single mode 6
// `version` packet), capturing all responses. The prober reproduces exactly
// that: one packet per target per pass, from one fixed source address,
// aggregate-everything-that-comes-back. Samples stream through a visitor so
// a full fifteen-week campaign never holds more than one amplifier's
// response set in memory.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "ntp/mode7.h"
#include "sim/impairment.h"
#include "sim/sharded_executor.h"
#include "sim/world.h"
#include "util/time.h"

// The sink is only taken by reference here; prober.cpp includes the study
// event vocabulary (waived).
namespace gorilla::study {
class EventSink;
}  // namespace gorilla::study

namespace gorilla::scan {

/// One amplifier's aggregate response to one weekly monlist probe.
struct AmplifierObservation {
  std::uint32_t server_index = 0;
  net::Ipv4Address address;  ///< address the probe hit that week
  std::uint64_t response_packets = 0;
  std::uint64_t response_udp_bytes = 0;
  std::uint64_t response_wire_bytes = 0;
  /// Final reassembled monlist table (empty for error-only replies).
  std::vector<ntp::MonitorEntry> table;
  /// When the probe was answered (table timestamps are relative to this).
  util::SimTime probe_time = 0;
  /// True when the reply arrived damaged — datagrams dropped or truncated —
  /// so `table` is a partial view of the server's monitor table.
  bool table_partial = false;
  /// Probe attempts consumed for this observation (1 = answered first try).
  int attempts = 1;
};

/// One responder's reply to the weekly version probe.
struct VersionObservation {
  std::uint32_t server_index = 0;
  net::Ipv4Address address;
  std::uint64_t response_packets = 0;
  std::uint64_t response_wire_bytes = 0;
  std::string system;   ///< parsed system= variable
  std::string version;  ///< parsed version= variable
  int stratum = 0;
  util::SimTime probe_time = 0;
};

struct MonlistSampleSummary {
  int week = 0;
  util::Date date;
  std::uint64_t probes_sent = 0;
  std::uint64_t responders = 0;       ///< amplifiers (table replies)
  std::uint64_t error_replies = 0;    ///< tiny impl-mismatch replies
  /// Targets that would have answered but were lost to impairment even
  /// after every retry (distinct from offline/restricted non-responders).
  std::uint64_t probes_lost = 0;
  std::uint64_t retries = 0;          ///< extra attempts beyond the first
  /// Responders whose reply arrived with datagrams missing or truncated.
  std::uint64_t truncated_tables = 0;
  /// Probes a rate-limiting server refused (silence or KoD) this window.
  std::uint64_t rate_limited = 0;
};

struct VersionSampleSummary {
  int week = 0;
  util::Date date;
  std::uint64_t probes_sent = 0;
  /// All servers that would answer (population count; includes servers
  /// outside the world's detailed tier).
  std::uint64_t responders_total = 0;
  /// Responders materialized and delivered to the visitor.
  std::uint64_t responders_detailed = 0;
  std::uint64_t probes_lost = 0;    ///< lost to impairment after all retries
  std::uint64_t retries = 0;
  std::uint64_t truncated_tables = 0;  ///< degraded-but-parsed replies
  std::uint64_t rate_limited = 0;
};

/// Retry/timeout/backoff policy for the resilient prober. Retries only ever
/// fire on *impairment* failures — in a clean network every target is probed
/// exactly once, matching the original one-packet-per-target methodology.
struct ProbePolicy {
  /// Seconds waited for a reply before an attempt is declared dead.
  double timeout_s = 5.0;
  /// Extra attempts after the first (total attempts = max_retries + 1).
  int max_retries = 2;
  /// Backoff before retry k is backoff_initial_s * backoff_factor^(k-1).
  double backoff_initial_s = 2.0;
  double backoff_factor = 2.0;

  /// SimTime offset of attempt `k` (0-based) from the pass's probe time.
  [[nodiscard]] util::SimTime attempt_offset(int k) const noexcept {
    double off = 0.0;
    double backoff = backoff_initial_s;
    for (int j = 0; j < k; ++j) {
      off += timeout_s + backoff;
      backoff *= backoff_factor;
    }
    return static_cast<util::SimTime>(off);
  }
};

class Prober {
 public:
  Prober(sim::World& world, net::Ipv4Address source,
         ntp::Implementation probe_impl = ntp::Implementation::kXntpd,
         const sim::ImpairmentConfig& impairment = {},
         const ProbePolicy& policy = {});

  using MonlistVisitor = std::function<void(const AmplifierObservation&)>;
  using VersionVisitor = std::function<void(const VersionObservation&)>;

  /// Runs the weekly monlist pass for sample week `week` (0 = 2014-01-10).
  /// Applies due remediation to the detailed tier first; visits every
  /// responding amplifier. Weeks must be probed in non-decreasing order.
  MonlistSampleSummary run_monlist_sample(int week,
                                          const MonlistVisitor& visit);

  /// Event-stream form: brackets the pass in on_sample_begin/on_sample_end,
  /// emits each responder as on_probe_observation and the final summary as
  /// on_monlist_summary. Observation order and the returned summary are
  /// identical to the visitor form.
  MonlistSampleSummary run_monlist_sample(int week, study::EventSink& sink);

  /// Runs the weekly version pass for *version* sample week `vweek`
  /// (0 = 2014-02-21, i.e. monlist week 6).
  VersionSampleSummary run_version_sample(int vweek,
                                          const VersionVisitor& visit);

  /// Probes an explicit target set at an arbitrary time — the §3.4
  /// follow-up methodology (twice-daily probes of the ~250K IPs that were
  /// monlist amplifiers in any March sample). `week` selects the
  /// remediation state; `now` stamps the probes. Weeks must be
  /// non-decreasing across calls.
  MonlistSampleSummary probe_targets(
      const std::vector<std::uint32_t>& server_indices, int week,
      util::SimTime now, const MonlistVisitor& visit);

  [[nodiscard]] net::Ipv4Address source() const noexcept { return source_; }

  /// Optional parallel engine for the per-target monlist loop. Each target
  /// only mutates its own server's state (monitor-table bookkeeping), so
  /// fixed-size target chunks probe independently on workers while the
  /// visitor runs on the calling thread in ascending target order — output
  /// is bit-identical for any job count. Passes that need the shared
  /// rate-limit window (impairment with rate_limit_per_window > 0) fall
  /// back to the sequential loop automatically. Null clears the executor.
  void set_executor(sim::ShardedExecutor* executor) noexcept {
    executor_ = executor;
  }
  [[nodiscard]] sim::ShardedExecutor* executor() const noexcept {
    return executor_;
  }

  /// SimTime at which week `week`'s monlist pass runs (Fridays, 12:00 UTC).
  [[nodiscard]] static util::SimTime sample_time(int week) noexcept;

  [[nodiscard]] const sim::ImpairmentLayer& impairment() const noexcept {
    return impairment_;
  }
  [[nodiscard]] const ProbePolicy& policy() const noexcept { return policy_; }

 private:
  void apply_due_remediation(int week);
  MonlistSampleSummary probe_indices(
      const std::vector<std::uint32_t>& server_indices, int week,
      util::SimTime now, const MonlistVisitor& visit);
  /// Probes one target; fills `obs` and returns true when it responded with
  /// a table. Counter side effects land in `summary`; server-state side
  /// effects touch only this target's server, which is what makes chunked
  /// parallel probing safe.
  bool probe_one(std::uint32_t server_index, int week, util::SimTime now,
                 const std::vector<std::uint8_t>& request_wire,
                 int max_attempts, MonlistSampleSummary& summary,
                 AmplifierObservation& obs);
  /// Resets the rate-limit window when the pass moves to a new week.
  void roll_window(int week);
  /// True when the server's response budget for this window is spent;
  /// consumes one unit otherwise (no-op unless the server rate limits).
  bool consume_rate_budget(std::uint32_t server_index);

  sim::World& world_;
  net::Ipv4Address source_;
  ntp::Implementation probe_impl_;
  sim::ImpairmentLayer impairment_;
  ProbePolicy policy_;
  sim::ShardedExecutor* executor_ = nullptr;
  int remediation_applied_week_ = -1;
  // Rate-limit window state: responses each limiting server has answered
  // this window (a sample week). The prober tracks this client-side the way
  // the real ONP would infer it — the oracle itself is stateless.
  int window_week_ = -1 << 30;
  std::unordered_map<std::uint32_t, std::uint32_t> responses_used_;
};

}  // namespace gorilla::scan
