// The OpenNTPProject-style Internet-wide prober (§3).
//
// Starting 2014-01-10 the ONP sent every IPv4 address a single
// MON_GETLIST_1 packet each week (and, from 2014-02-21, a single mode 6
// `version` packet), capturing all responses. The prober reproduces exactly
// that: one packet per target per pass, from one fixed source address,
// aggregate-everything-that-comes-back. Samples stream through a visitor so
// a full fifteen-week campaign never holds more than one amplifier's
// response set in memory.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "ntp/mode7.h"
#include "sim/world.h"
#include "util/time.h"

namespace gorilla::scan {

/// One amplifier's aggregate response to one weekly monlist probe.
struct AmplifierObservation {
  std::uint32_t server_index = 0;
  net::Ipv4Address address;  ///< address the probe hit that week
  std::uint64_t response_packets = 0;
  std::uint64_t response_udp_bytes = 0;
  std::uint64_t response_wire_bytes = 0;
  /// Final reassembled monlist table (empty for error-only replies).
  std::vector<ntp::MonitorEntry> table;
  /// When the probe was answered (table timestamps are relative to this).
  util::SimTime probe_time = 0;
};

/// One responder's reply to the weekly version probe.
struct VersionObservation {
  std::uint32_t server_index = 0;
  net::Ipv4Address address;
  std::uint64_t response_packets = 0;
  std::uint64_t response_wire_bytes = 0;
  std::string system;   ///< parsed system= variable
  std::string version;  ///< parsed version= variable
  int stratum = 0;
  util::SimTime probe_time = 0;
};

struct MonlistSampleSummary {
  int week = 0;
  util::Date date;
  std::uint64_t probes_sent = 0;
  std::uint64_t responders = 0;       ///< amplifiers (table replies)
  std::uint64_t error_replies = 0;    ///< tiny impl-mismatch replies
};

struct VersionSampleSummary {
  int week = 0;
  util::Date date;
  std::uint64_t probes_sent = 0;
  /// All servers that would answer (population count; includes servers
  /// outside the world's detailed tier).
  std::uint64_t responders_total = 0;
  /// Responders materialized and delivered to the visitor.
  std::uint64_t responders_detailed = 0;
};

class Prober {
 public:
  Prober(sim::World& world, net::Ipv4Address source,
         ntp::Implementation probe_impl = ntp::Implementation::kXntpd);

  using MonlistVisitor = std::function<void(const AmplifierObservation&)>;
  using VersionVisitor = std::function<void(const VersionObservation&)>;

  /// Runs the weekly monlist pass for sample week `week` (0 = 2014-01-10).
  /// Applies due remediation to the detailed tier first; visits every
  /// responding amplifier. Weeks must be probed in non-decreasing order.
  MonlistSampleSummary run_monlist_sample(int week,
                                          const MonlistVisitor& visit);

  /// Runs the weekly version pass for *version* sample week `vweek`
  /// (0 = 2014-02-21, i.e. monlist week 6).
  VersionSampleSummary run_version_sample(int vweek,
                                          const VersionVisitor& visit);

  /// Probes an explicit target set at an arbitrary time — the §3.4
  /// follow-up methodology (twice-daily probes of the ~250K IPs that were
  /// monlist amplifiers in any March sample). `week` selects the
  /// remediation state; `now` stamps the probes. Weeks must be
  /// non-decreasing across calls.
  MonlistSampleSummary probe_targets(
      const std::vector<std::uint32_t>& server_indices, int week,
      util::SimTime now, const MonlistVisitor& visit);

  [[nodiscard]] net::Ipv4Address source() const noexcept { return source_; }

  /// SimTime at which week `week`'s monlist pass runs (Fridays, 12:00 UTC).
  [[nodiscard]] static util::SimTime sample_time(int week) noexcept;

 private:
  void apply_due_remediation(int week);
  MonlistSampleSummary probe_indices(
      const std::vector<std::uint32_t>& server_indices, int week,
      util::SimTime now, const MonlistVisitor& visit);

  sim::World& world_;
  net::Ipv4Address source_;
  ntp::Implementation probe_impl_;
  int remediation_applied_week_ = -1;
};

}  // namespace gorilla::scan
