// Small statistics toolkit used by every analysis: quantiles, boxplot
// five-number summaries (Figure 4b/4c), CDFs (Figure 5), and running
// accumulators for streaming samples.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace gorilla::core {

/// Five-number summary as drawn in the paper's boxplots.
struct BoxplotSummary {
  double min = 0.0;
  double q1 = 0.0;
  double median = 0.0;
  double q3 = 0.0;
  double max = 0.0;
  std::size_t count = 0;
};

/// Quantile by linear interpolation on a *sorted* span; q in [0,1].
[[nodiscard]] double quantile_sorted(std::span<const double> sorted, double q);

/// Quantile of an unsorted span (copies + sorts).
[[nodiscard]] double quantile(std::span<const double> values, double q);

[[nodiscard]] double mean(std::span<const double> values);

/// Builds the five-number summary (empty input -> all zeros, count 0).
[[nodiscard]] BoxplotSummary boxplot(std::span<const double> values);

/// One point of an empirical CDF over ranked contributions.
struct CdfPoint {
  std::size_t rank = 0;     ///< 1-based rank (largest contributor first)
  double cumulative = 0.0;  ///< fraction of the total carried by ranks <= rank
};

/// CDF of contributions sorted descending (Figure 5's by-AS concentration):
/// returns one point per rank. Non-positive totals yield an empty curve.
[[nodiscard]] std::vector<CdfPoint> concentration_cdf(
    std::span<const double> contributions);

/// Fraction of the total carried by the top `k` contributors.
[[nodiscard]] double top_k_share(std::span<const double> contributions,
                                 std::size_t k);

/// Streaming accumulator: keeps every value (analyses are bounded by the
/// per-sample amplifier count) and answers summary queries at end-of-sample.
class SampleAccumulator {
 public:
  void add(double v) { values_.push_back(v); }
  void reserve(std::size_t n) { values_.reserve(n); }
  [[nodiscard]] std::size_t count() const noexcept { return values_.size(); }
  [[nodiscard]] double mean() const;
  [[nodiscard]] double quantile(double q) const;
  [[nodiscard]] BoxplotSummary boxplot() const;
  void clear() { values_.clear(); }
  [[nodiscard]] const std::vector<double>& values() const noexcept {
    return values_;
  }

 private:
  std::vector<double> values_;
};

}  // namespace gorilla::core
