// monlist table interpretation — §4.1 / §4.2.
//
// The heart of the paper's victimology: each table entry is classified as a
// non-victim (ordinary NTP modes), a scanner/low-volume client, or an
// apparent DDoS victim, using exactly the paper's thresholds. From a victim
// entry and the probe time we derive the attack's end (last seen), duration
// (count x average interarrival), and start (end - duration).
#pragma once

#include <cstdint>
#include <optional>

#include "net/ipv4.h"
#include "ntp/mode7.h"
#include "util/time.h"

namespace gorilla::core {

enum class ClientClass : std::uint8_t {
  kNonVictim,           ///< mode < 6: ordinary NTP operation
  kScannerOrLowVolume,  ///< mode 6/7 but count < 3 or interarrival > 3600
  kVictim,              ///< mode 6/7, count >= 3, <= 1 packet/hour average
};

/// §4.2's filter, verbatim: modes below 6 are non-victims; mode 6/7 clients
/// that sent fewer than 3 packets or averaged more than an hour between
/// packets are scanners/low-volume; the rest are victims.
[[nodiscard]] ClientClass classify_client(const ntp::MonitorEntry& entry)
    noexcept;

/// An attack on one victim as witnessed by one amplifier's table.
struct WitnessedAttack {
  net::Ipv4Address victim;
  net::Ipv4Address amplifier;
  std::uint16_t victim_port = 0;
  std::uint8_t mode = 0;
  std::uint64_t packets = 0;          ///< spoofed packets the amplifier saw
  util::SimTime end_time = 0;         ///< probe_time - last_seen
  util::SimTime duration = 0;         ///< count * avg_interarrival
  util::SimTime start_time = 0;       ///< end - duration
};

/// Derives the witnessed attack from a victim-classified entry; nullopt for
/// entries the filter rejects.
[[nodiscard]] std::optional<WitnessedAttack> derive_attack(
    const ntp::MonitorEntry& entry, util::SimTime probe_time,
    net::Ipv4Address amplifier) noexcept;

}  // namespace gorilla::core
