#include "core/remediation_analysis.h"

#include <algorithm>

namespace gorilla::core {

namespace {

double reduction_pct(double first, double last) {
  return first > 0.0 ? 100.0 * (first - last) / first : 0.0;
}

}  // namespace

LevelReduction level_reduction(const AmplifierCensus& census) {
  LevelReduction r;
  const auto& rows = census.rows();
  if (rows.size() < 2) return r;
  const auto& first = rows.front();
  const auto& last = rows.back();
  r.ips_pct = reduction_pct(static_cast<double>(first.ips),
                            static_cast<double>(last.ips));
  r.slash24_pct = reduction_pct(static_cast<double>(first.slash24s),
                                static_cast<double>(last.slash24s));
  r.blocks_pct = reduction_pct(static_cast<double>(first.routed_blocks),
                               static_cast<double>(last.routed_blocks));
  r.asns_pct = reduction_pct(static_cast<double>(first.asns),
                             static_cast<double>(last.asns));
  return r;
}

std::vector<ContinentReduction> continent_reduction(
    const AmplifierCensus& census) {
  std::vector<ContinentReduction> out;
  const auto& rows = census.rows();
  if (rows.size() < 2) return out;
  for (int c = 0; c < net::kContinentCount; ++c) {
    ContinentReduction r;
    r.continent = static_cast<net::Continent>(c);
    r.remediated_pct = reduction_pct(
        static_cast<double>(rows.front().by_continent[static_cast<std::size_t>(c)]),
        static_cast<double>(rows.back().by_continent[static_cast<std::size_t>(c)]));
    out.push_back(r);
  }
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return a.remediated_pct > b.remediated_pct;
  });
  return out;
}

PoolSeries make_pool_series(std::string name,
                            const std::vector<std::uint64_t>& weekly_counts) {
  PoolSeries s;
  s.name = std::move(name);
  for (const auto c : weekly_counts) s.peak = std::max(s.peak, c);
  s.relative_to_peak.reserve(weekly_counts.size());
  for (const auto c : weekly_counts) {
    s.relative_to_peak.push_back(
        s.peak ? static_cast<double>(c) / static_cast<double>(s.peak) : 0.0);
  }
  return s;
}

std::vector<RemediationEffectRow> remediation_effect(
    const AmplifierCensus& census, const VictimAnalysis& victims) {
  std::vector<RemediationEffectRow> out;
  const auto& arows = census.rows();
  const auto& vrows = victims.rows();
  const std::size_t n = std::min(arows.size(), vrows.size());
  for (std::size_t i = 0; i < n; ++i) {
    RemediationEffectRow row;
    row.week = arows[i].week;
    row.amplifiers_per_victim = vrows[i].amplifiers_per_victim;
    const double victim_packets =
        vrows[i].packets_mean * static_cast<double>(vrows[i].ips);
    row.packets_per_amplifier =
        arows[i].ips ? victim_packets / static_cast<double>(arows[i].ips)
                     : 0.0;
    row.victim_packets_p95 = vrows[i].packets_p95;
    out.push_back(row);
  }
  return out;
}

CrossDatasetValidation validate_published_as_list(
    std::vector<net::Asn> published, const VictimAnalysis& victims) {
  CrossDatasetValidation v;
  std::sort(published.begin(), published.end());
  published.erase(std::unique(published.begin(), published.end()),
                  published.end());
  v.published_ases = published.size();

  const auto breakdown = victims.amplifier_as_breakdown();
  std::uint64_t total = 0, overlap_packets = 0;
  for (const auto& [asn, packets] : breakdown) {
    total += packets;
    if (std::binary_search(published.begin(), published.end(), asn)) {
      ++v.overlapping_ases;
      overlap_packets += packets;
    }
  }
  v.overlap_fraction =
      v.published_ases
          ? static_cast<double>(v.overlapping_ases) /
                static_cast<double>(v.published_ases)
          : 0.0;
  v.packet_share_of_total =
      total ? static_cast<double>(overlap_packets) /
                  static_cast<double>(total)
            : 0.0;
  return v;
}

PoolOverlap pool_overlap(std::vector<net::Ipv4Address> a,
                         std::vector<net::Ipv4Address> b) {
  PoolOverlap r;
  std::sort(a.begin(), a.end());
  a.erase(std::unique(a.begin(), a.end()), a.end());
  std::sort(b.begin(), b.end());
  b.erase(std::unique(b.begin(), b.end()), b.end());
  std::size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      ++r.intersection;
      ++i;
      ++j;
    }
  }
  r.fraction_of_first =
      a.empty() ? 0.0
                : static_cast<double>(r.intersection) /
                      static_cast<double>(a.size());
  return r;
}

}  // namespace gorilla::core
