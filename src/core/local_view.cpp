#include "core/local_view.h"

#include <algorithm>

#include "net/packet.h"
#include "util/det.h"

namespace gorilla::core {

namespace {

std::uint64_t pair_key(net::Ipv4Address amp, net::Ipv4Address victim) {
  return (std::uint64_t{amp.value()} << 32) | victim.value();
}

std::optional<std::uint8_t> mode_of(
    const std::map<std::uint8_t, std::uint64_t>& histogram) {
  std::optional<std::uint8_t> best;
  std::uint64_t best_count = 0;
  for (const auto& [ttl, count] : histogram) {
    if (count > best_count) {
      best = ttl;
      best_count = count;
    }
  }
  return best;
}

}  // namespace

LocalForensics::LocalForensics(const telemetry::FlowCollector& collector,
                               const net::Registry& registry)
    : collector_(collector), registry_(registry) {
  // Pass 1: per-local-host NTP send/receive aggregates, per-pair stats.
  for (const auto& f : collector_.flows()) {
    const auto dir = collector_.direction(f);
    if (dir == telemetry::Direction::kEgress && f.src_port == net::kNtpPort) {
      ntp_speakers_[f.src.value()] = true;
      auto& amp = amp_stats_[f.src.value()];
      amp.sent_bytes += f.bytes;
      amp.sent_payload += f.payload_bytes;
      auto& pair = pairs_[pair_key(f.src, f.dst)];
      pair.response_bytes += f.bytes;
      pair.response_payload += f.payload_bytes;
      pair.first = pair.first == 0 ? f.first : std::min(pair.first, f.first);
      pair.last = std::max(pair.last, f.last);
    } else if (dir == telemetry::Direction::kIngress &&
               f.dst_port == net::kNtpPort) {
      auto& amp = amp_stats_[f.dst.value()];
      amp.received_bytes += f.bytes;
      amp.received_payload += f.payload_bytes;
      // Only non-NTP source ports are probe/trigger candidates: sport 123
      // inbound is NTP-to-NTP traffic (reflection responses aimed at local
      // victims, or server peering), not a client of a local amplifier.
      if (f.src_port != net::kNtpPort) {
        auto& pair = pairs_[pair_key(f.dst, f.src)];
        pair.trigger_bytes += f.bytes;
        pair.trigger_payload += f.payload_bytes;
        auto [it, inserted] = external_probe_sources_.try_emplace(
            f.src.value(), std::make_pair(f.first, f.last));
        if (!inserted) {
          it->second.first = std::min(it->second.first, f.first);
          it->second.second = std::max(it->second.second, f.last);
        }
        // No legitimate prober sends a flood of mode 7 queries to a single
        // host (the ONP sends exactly one per week); a source hammering one
        // local destination is a spoofed attack artifact even when the
        // reflection pair stays under the victim threshold.
        if (f.packets >= 100) high_rate_sources_[f.src.value()] = true;
      }
    }
  }
  // Pass 2: qualify victims per footnote 3 and capture TTL histograms.
  // Order-independent flag assignment per pair.
  for (const auto& [key, pair] : pairs_) {  // NOLINT(unordered-iter)
    const double ratio =
        pair.trigger_payload > 0
            ? static_cast<double>(pair.response_payload) /
                  static_cast<double>(pair.trigger_payload)
            : static_cast<double>(pair.response_payload);
    if (pair.response_bytes >= kLocalVictimMinBytes &&
        ratio >= kLocalVictimMinRatio) {
      victims_[static_cast<std::uint32_t>(key)] = true;
    }
  }
  for (const auto& f : collector_.flows()) {
    if (collector_.direction(f) != telemetry::Direction::kIngress ||
        f.dst_port != net::kNtpPort || f.src_port == net::kNtpPort) {
      continue;
    }
    // Spoofed triggers aim exclusively at hosts that actually speak NTP
    // (the attacker worked from a scan-built amplifier list); sweeps hit
    // everything, so a probe of a non-speaker marks its source as a
    // scanner and the packet as scanning traffic.
    if (!ntp_speakers_.count(f.dst.value())) {
      swept_nonspeakers_[f.src.value()] = true;
      scan_ttls_[f.ttl] += f.packets;
    } else {
      trigger_ttls_[f.ttl] += f.packets;
    }
  }
}

std::vector<LocalAmplifier> LocalForensics::amplifiers() const {
  // Address order in, stable rank-sort out: equal-BAF amplifiers keep a
  // deterministic (address) order in the report.
  std::vector<LocalAmplifier> out;
  for (const auto& [addr_value, stats] : util::sorted_items(amp_stats_)) {
    if (stats.sent_bytes < kLocalAmplifierMinBytes) continue;
    const double wire_ratio =
        stats.received_bytes > 0
            ? static_cast<double>(stats.sent_bytes) /
                  static_cast<double>(stats.received_bytes)
            : static_cast<double>(stats.sent_bytes);
    if (wire_ratio <= kLocalAmplifierMinRatio) continue;
    LocalAmplifier amp;
    amp.address = net::Ipv4Address{addr_value};
    amp.baf = stats.received_payload > 0
                  ? static_cast<double>(stats.sent_payload) /
                        static_cast<double>(stats.received_payload)
                  : 0.0;
    amp.bytes_sent = stats.sent_bytes;
    // Order-independent count of this amplifier's responding pairs.
    for (const auto& [key, pair] : pairs_) {  // NOLINT(unordered-iter)
      if (static_cast<std::uint32_t>(key >> 32) == addr_value &&
          pair.response_bytes > 0) {
        ++amp.unique_victims;
      }
    }
    out.push_back(amp);
  }
  std::stable_sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return a.baf > b.baf;
  });
  return out;
}

std::vector<LocalVictim> LocalForensics::victims() const {
  std::unordered_map<std::uint32_t, LocalVictim> by_victim;
  std::unordered_map<std::uint32_t, std::pair<util::SimTime, util::SimTime>>
      spans;
  std::unordered_map<std::uint32_t, std::uint64_t> trig_payload;
  // Order-independent accumulation: sums are exact (integer-valued) and the
  // span merge is min/max, so the hash walk cannot affect the result.
  for (const auto& [key, pair] : pairs_) {  // NOLINT(unordered-iter)
    const auto victim_value = static_cast<std::uint32_t>(key);
    if (!victims_.count(victim_value)) continue;
    // Only pairs that actually delivered response traffic count as an
    // amplifier attacking this victim (trigger-only pairs carry no span).
    if (pair.response_bytes == 0) continue;
    auto& v = by_victim[victim_value];
    if (v.amplifiers == 0) {
      v.address = net::Ipv4Address{victim_value};
      v.asn = registry_.asn_of(v.address);
      if (v.asn) {
        v.region = net::to_string(registry_.as_info(*v.asn).continent);
      }
      spans[victim_value] = {pair.first, pair.last};
    } else {
      auto& span = spans[victim_value];
      span.first = std::min(span.first, pair.first);
      span.second = std::max(span.second, pair.last);
    }
    ++v.amplifiers;
    v.bytes += pair.response_bytes;
    v.baf += static_cast<double>(pair.response_payload);
    trig_payload[victim_value] += pair.trigger_payload;
  }
  std::vector<LocalVictim> out;
  out.reserve(by_victim.size());
  // Address order in, stable rank-sort out: equal-volume victims keep a
  // deterministic order in the report.
  for (const std::uint32_t value : util::sorted_keys(by_victim)) {
    auto& v = by_victim.at(value);
    const auto& span = spans[value];
    v.duration_hours = span.second > span.first
                           ? static_cast<double>(span.second - span.first) /
                                 3600.0
                           : 0.0;
    const auto tp = trig_payload[value];
    v.baf = tp > 0 ? v.baf / static_cast<double>(tp) : 0.0;
    out.push_back(std::move(v));
  }
  std::stable_sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return a.bytes > b.bytes;
  });
  return out;
}

std::vector<net::Ipv4Address> LocalForensics::scanners() const {
  std::vector<net::Ipv4Address> out;
  // The full ascending sort below erases the visit order.
  for (const auto& [addr, span] : external_probe_sources_) {  // NOLINT(unordered-iter)
    // Scanners (a) hit local hosts that do not speak NTP — only a sweep
    // does that — and (b) probe persistently (research sweeps recur
    // weekly); one-shot or speaker-only sources are spoof artifacts.
    if (swept_nonspeakers_.count(addr) && !victims_.count(addr) &&
        !high_rate_sources_.count(addr) &&
        span.second - span.first >= util::kSecondsPerDay) {
      out.push_back(net::Ipv4Address{addr});
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

TtlProfile LocalForensics::ttl_profile() const {
  return TtlProfile{mode_of(scan_ttls_), mode_of(trigger_ttls_)};
}

telemetry::VolumeSeries LocalForensics::victim_volume(
    net::Ipv4Address victim, util::SimTime start, util::SimTime end,
    util::SimTime bucket_seconds) const {
  return collector_.volume_series(
      start, end, bucket_seconds, [&](const telemetry::FlowRecord& f) {
        return f.dst == victim && f.src_port == net::kNtpPort;
      });
}

std::vector<net::Ipv4Address> LocalForensics::common_victims(
    const LocalForensics& a, const LocalForensics& b) {
  std::vector<net::Ipv4Address> out;
  // The full ascending sort below erases the visit order.
  for (const auto& [addr, _] : a.victims_) {  // NOLINT(unordered-iter)
    if (b.victims_.count(addr)) out.push_back(net::Ipv4Address{addr});
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<net::Ipv4Address> LocalForensics::common_scanners(
    const LocalForensics& a, const LocalForensics& b) {
  const auto sa = a.scanners();
  const auto sb = b.scanners();
  std::vector<net::Ipv4Address> out;
  std::set_intersection(sa.begin(), sa.end(), sb.begin(), sb.end(),
                        std::back_inserter(out));
  return out;
}

}  // namespace gorilla::core
