// Victimology — §4 (who is attacked, where, on which ports, how hard).
//
// VictimAnalysis streams the same weekly amplifier observations as the
// census, applies the §4.2 client filter to every monlist table entry, and
// maintains the paper's victim-side results: per-sample victim populations
// (Table 1 right), attacked-port tallies (Table 4), per-AS packet
// concentration (Figure 5), per-victim packet totals (Figure 6), derived
// attack counts per hour (Figure 7), and the §6.3 remediation-effect
// trends (amplifiers per victim, packets per amplifier).
#pragma once

#include <cstdint>
#include <map>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/monlist_analysis.h"
#include "core/stats.h"
#include "net/pbl.h"
#include "net/registry.h"
#include "scan/prober.h"
#include "util/time.h"

namespace gorilla::core {

struct VictimSampleRow {
  int week = 0;
  util::Date date;
  std::uint64_t ips = 0;
  std::uint64_t routed_blocks = 0;
  std::uint64_t asns = 0;
  std::uint64_t end_hosts = 0;
  double end_host_pct = 0.0;
  double ips_per_block = 0.0;
  /// Per-victim total packets received this sample (Figure 6).
  double packets_mean = 0.0;
  double packets_median = 0.0;
  double packets_p95 = 0.0;
  /// Mean number of amplifiers witnessed attacking each victim (§6.3).
  double amplifiers_per_victim = 0.0;
  /// Median over amplifiers of the table's largest last-seen (the §4.2
  /// observation-window estimate; the paper's overall median is ~44 h).
  double median_window_seconds = 0.0;
  /// Victim/scanner interest in version (mode 6) vs monlist (mode 7), §3.3.
  double scanner_mode6_share = 0.0;
  double victim_mode6_share = 0.0;
};

class VictimAnalysis {
 public:
  VictimAnalysis(const net::Registry& registry,
                 const net::PolicyBlockList& pbl);

  void begin_sample(int week, util::Date date);
  void add(const scan::AmplifierObservation& obs);
  void end_sample();

  [[nodiscard]] const std::vector<VictimSampleRow>& rows() const noexcept {
    return rows_;
  }

  /// Cumulative unique victim IPs (the paper's 437K).
  [[nodiscard]] std::uint64_t unique_victims() const noexcept {
    return victim_ever_.size();
  }
  /// Cumulative victim packets across all samples (the paper's 2.92T).
  [[nodiscard]] std::uint64_t total_packets() const noexcept {
    return total_packets_;
  }

  /// Table 4: attacked ports ranked by amplifier/victim-pair fraction.
  [[nodiscard]] std::vector<std::pair<std::uint16_t, double>> top_ports(
      std::size_t n) const;

  /// Figure 5 inputs: per-AS cumulative victim packets, for victim-side and
  /// amplifier-side attribution. Values are unsorted contribution lists.
  [[nodiscard]] std::vector<double> victim_as_packets() const;
  [[nodiscard]] std::vector<double> amplifier_as_packets() const;
  [[nodiscard]] std::size_t victim_as_count() const noexcept {
    return packets_by_victim_as_.size();
  }
  [[nodiscard]] std::size_t amplifier_as_count() const noexcept {
    return packets_by_amplifier_as_.size();
  }

  /// Top victim ASes by cumulative packets (for §4.4 validation).
  [[nodiscard]] std::vector<std::pair<net::Asn, std::uint64_t>> top_victim_ases(
      std::size_t n) const;

  /// Full per-AS amplifier-side packet breakdown (unordered).
  [[nodiscard]] std::vector<std::pair<net::Asn, std::uint64_t>>
  amplifier_as_breakdown() const;

  /// Figure 7: derived attacks per hour (hour index since sim epoch).
  [[nodiscard]] const std::map<std::int64_t, std::uint64_t>& attacks_per_hour()
      const noexcept {
    return attacks_per_hour_;
  }

  /// Attack duration quantiles for samples closed so far (§4.3.4), seconds.
  [[nodiscard]] const std::vector<std::pair<double, double>>&
  duration_median_p95_by_sample() const noexcept {
    return durations_;
  }

 private:
  struct PerVictim {
    std::uint64_t packets = 0;
    std::uint32_t amplifiers = 0;
    std::vector<util::SimTime> starts;
  };

  const net::Registry& registry_;
  const net::PolicyBlockList& pbl_;

  std::vector<VictimSampleRow> rows_;
  std::unordered_set<std::uint32_t> victim_ever_;
  std::uint64_t total_packets_ = 0;
  std::map<std::uint16_t, std::uint64_t> port_pairs_;
  std::uint64_t port_pairs_total_ = 0;
  std::unordered_map<net::Asn, std::uint64_t> packets_by_victim_as_;
  std::unordered_map<net::Asn, std::uint64_t> packets_by_amplifier_as_;
  std::map<std::int64_t, std::uint64_t> attacks_per_hour_;
  std::vector<std::pair<double, double>> durations_;

  // Open-sample state.
  bool sample_open_ = false;
  VictimSampleRow current_;
  std::unordered_map<std::uint32_t, PerVictim> cur_victims_;
  SampleAccumulator cur_windows_;
  SampleAccumulator cur_durations_;
  std::uint64_t cur_scanner_mode6_ = 0, cur_scanner_total_ = 0;
  std::uint64_t cur_victim_mode6_ = 0, cur_victim_total_ = 0;
};

}  // namespace gorilla::core
