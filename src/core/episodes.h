// Campaign-episode reconstruction — the §4.3.4 disambiguation problem.
//
// The paper counts "one attack per victim per weekly sample" and lists the
// ways that simplification cuts both ways: one campaign may span several
// samples and amplifiers, while several distinct attacks inside a sample
// collapse into one. This module implements the finer-grained alternative:
// merge per-amplifier witnessed attacks into *episodes* — same victim,
// time-overlapping (or nearly so) intervals — and report per-episode
// amplifier counts, packet totals, and durations.
#pragma once

#include <cstdint>
#include <vector>

#include "core/monlist_analysis.h"

namespace gorilla::core {

/// One reconstructed attack episode against a single victim.
struct AttackEpisode {
  net::Ipv4Address victim;
  util::SimTime start = 0;
  util::SimTime end = 0;
  std::uint32_t amplifiers = 0;  ///< distinct amplifiers participating
  std::uint64_t packets = 0;     ///< spoofed packets across amplifiers

  [[nodiscard]] util::SimTime duration() const noexcept {
    return end - start;
  }
};

/// Merges witnessed attacks into episodes. Two witnessed attacks on the
/// same victim belong to one episode when their [start, end] intervals
/// overlap or sit within `join_gap` seconds of each other (coordinated
/// amplifier sets never fire at exactly the same instant). Input order is
/// irrelevant; output is sorted by (victim, start).
[[nodiscard]] std::vector<AttackEpisode> merge_episodes(
    std::vector<WitnessedAttack> witnessed,
    util::SimTime join_gap = 3600);

/// Summary statistics over a set of episodes.
struct EpisodeStats {
  std::size_t episodes = 0;
  double median_duration_s = 0.0;
  double p95_duration_s = 0.0;
  double median_amplifiers = 0.0;
  double max_amplifiers = 0.0;
};

[[nodiscard]] EpisodeStats summarize_episodes(
    const std::vector<AttackEpisode>& episodes);

}  // namespace gorilla::core
