#include "core/episodes.h"

#include <algorithm>
#include <set>

#include "core/stats.h"

namespace gorilla::core {

std::vector<AttackEpisode> merge_episodes(
    std::vector<WitnessedAttack> witnessed, util::SimTime join_gap) {
  std::sort(witnessed.begin(), witnessed.end(),
            [](const WitnessedAttack& a, const WitnessedAttack& b) {
              if (a.victim != b.victim) return a.victim < b.victim;
              if (a.start_time != b.start_time) return a.start_time < b.start_time;
              return a.end_time < b.end_time;
            });

  std::vector<AttackEpisode> episodes;
  std::set<std::uint32_t> current_amps;
  bool open = false;
  AttackEpisode current;

  auto close = [&] {
    if (!open) return;
    current.amplifiers = static_cast<std::uint32_t>(current_amps.size());
    episodes.push_back(current);
    current_amps.clear();
    open = false;
  };

  for (const auto& w : witnessed) {
    const bool joins = open && w.victim == current.victim &&
                       w.start_time <= current.end + join_gap;
    if (!joins) {
      close();
      current = AttackEpisode{};
      current.victim = w.victim;
      current.start = w.start_time;
      current.end = w.end_time;
      open = true;
    }
    current.end = std::max(current.end, w.end_time);
    current.packets += w.packets;
    current_amps.insert(w.amplifier.value());
  }
  close();
  return episodes;
}

EpisodeStats summarize_episodes(const std::vector<AttackEpisode>& episodes) {
  EpisodeStats stats;
  stats.episodes = episodes.size();
  if (episodes.empty()) return stats;
  std::vector<double> durations, amps;
  durations.reserve(episodes.size());
  amps.reserve(episodes.size());
  for (const auto& e : episodes) {
    durations.push_back(static_cast<double>(e.duration()));
    amps.push_back(static_cast<double>(e.amplifiers));
  }
  stats.median_duration_s = quantile(durations, 0.5);
  stats.p95_duration_s = quantile(durations, 0.95);
  stats.median_amplifiers = quantile(amps, 0.5);
  stats.max_amplifiers = quantile(amps, 1.0);
  return stats;
}

}  // namespace gorilla::core
