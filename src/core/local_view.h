// Regional-ISP forensics — §7.
//
// Given one vantage point's flow records, LocalForensics recovers what the
// paper extracted at Merit and FRGP/CSU: the local amplifiers (a local host
// that *sent* >= 10 MB of sport-123 traffic with a sent/received ratio > 5),
// their victims (an external client *receiving* >= 100 KB from an amplifier
// at a >= 100x payload ratio), per-amplifier and per-victim league tables
// (Tables 5-6), cross-site victim/scanner intersections (Figures 15-16),
// and the TTL-mode OS inference separating Linux scanners from Windows
// attack bots (§7.2). Definitions follow the paper's footnote 3.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/registry.h"
// Published downward interface (DESIGN.md §3f): the §6 forensics read a
// vantage's FlowCollector and hand back telemetry::VolumeSeries by value,
// so the flow vocabulary is part of this header's contract.
#include "telemetry/flow.h"  // NOLINT(layer-break)
#include "util/time.h"

namespace gorilla::core {

/// footnote-3 thresholds.
inline constexpr std::uint64_t kLocalAmplifierMinBytes = 10'000'000;
inline constexpr double kLocalAmplifierMinRatio = 5.0;
inline constexpr std::uint64_t kLocalVictimMinBytes = 100'000;
inline constexpr double kLocalVictimMinRatio = 100.0;

struct LocalAmplifier {
  net::Ipv4Address address;
  double baf = 0.0;  ///< UDP payload sent/received ratio
  std::uint64_t unique_victims = 0;
  std::uint64_t bytes_sent = 0;  ///< on-wire bytes to victims
};

struct LocalVictim {
  net::Ipv4Address address;
  std::optional<net::Asn> asn;
  std::string region;  ///< continent of the victim's AS (GeoIP analogue)
  double baf = 0.0;
  std::uint64_t amplifiers = 0;
  double duration_hours = 0.0;
  std::uint64_t bytes = 0;
};

struct TtlProfile {
  std::optional<std::uint8_t> scanner_mode_ttl;
  std::optional<std::uint8_t> attack_mode_ttl;
};

class LocalForensics {
 public:
  LocalForensics(const telemetry::FlowCollector& collector,
                 const net::Registry& registry);

  /// Local amplifiers ranked by BAF (Table 5's ordering).
  [[nodiscard]] std::vector<LocalAmplifier> amplifiers() const;

  /// Victims ranked by bytes received (Table 6 / Figure 13 ordering).
  [[nodiscard]] std::vector<LocalVictim> victims() const;

  [[nodiscard]] std::uint64_t unique_victim_count() const {
    return victims_.size();
  }

  /// External sources probing local port 123 that are not attack victims
  /// (spoofed trigger sources are excluded) — scanner candidates.
  [[nodiscard]] std::vector<net::Ipv4Address> scanners() const;

  /// §7.2: modal TTLs of scanning vs spoofed attack-trigger traffic.
  [[nodiscard]] TtlProfile ttl_profile() const;

  /// Per-victim volume series (the Figure 13 stack), bucketed.
  [[nodiscard]] telemetry::VolumeSeries victim_volume(
      net::Ipv4Address victim, util::SimTime start, util::SimTime end,
      util::SimTime bucket_seconds) const;

  /// Victims this site has in common with another site (Figure 15's 291).
  [[nodiscard]] static std::vector<net::Ipv4Address> common_victims(
      const LocalForensics& a, const LocalForensics& b);

  /// Scanner IPs seen at both sites (Figure 16's 42).
  [[nodiscard]] static std::vector<net::Ipv4Address> common_scanners(
      const LocalForensics& a, const LocalForensics& b);

 private:
  struct AmpStats {
    std::uint64_t sent_bytes = 0;          // on-wire, sport 123 egress
    std::uint64_t sent_payload = 0;
    std::uint64_t received_bytes = 0;      // on-wire, dport 123 ingress
    std::uint64_t received_payload = 0;
  };
  struct PairStats {
    std::uint64_t response_bytes = 0;
    std::uint64_t response_payload = 0;
    std::uint64_t trigger_bytes = 0;
    std::uint64_t trigger_payload = 0;
    util::SimTime first = 0;
    util::SimTime last = 0;
  };

  const telemetry::FlowCollector& collector_;
  const net::Registry& registry_;
  std::unordered_map<std::uint32_t, AmpStats> amp_stats_;
  // (amplifier << 32 | victim) -> pair stats
  std::unordered_map<std::uint64_t, PairStats> pairs_;
  std::map<std::uint8_t, std::uint64_t> scan_ttls_;
  std::map<std::uint8_t, std::uint64_t> trigger_ttls_;
  /// source -> (first, last) time it probed local port 123.
  std::unordered_map<std::uint32_t, std::pair<util::SimTime, util::SimTime>>
      external_probe_sources_;
  std::unordered_map<std::uint32_t, bool> high_rate_sources_;
  /// Local hosts observed actually speaking NTP (egress sport 123).
  std::unordered_map<std::uint32_t, bool> ntp_speakers_;
  /// Sources that probed local hosts which do NOT speak NTP — the
  /// signature of address-space sweeping rather than spoofed triggering.
  std::unordered_map<std::uint32_t, bool> swept_nonspeakers_;
  std::unordered_map<std::uint32_t, bool> victims_;  // victim ip -> qualified
};

}  // namespace gorilla::core
