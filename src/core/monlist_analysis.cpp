#include "core/monlist_analysis.h"

namespace gorilla::core {

ClientClass classify_client(const ntp::MonitorEntry& entry) noexcept {
  if (entry.mode < 6) return ClientClass::kNonVictim;
  if (entry.count < 3 || entry.avg_interval > 3600) {
    return ClientClass::kScannerOrLowVolume;
  }
  return ClientClass::kVictim;
}

std::optional<WitnessedAttack> derive_attack(const ntp::MonitorEntry& entry,
                                             util::SimTime probe_time,
                                             net::Ipv4Address amplifier)
    noexcept {
  if (classify_client(entry) != ClientClass::kVictim) return std::nullopt;
  WitnessedAttack a;
  a.victim = entry.address;
  a.amplifier = amplifier;
  a.victim_port = entry.port;
  a.mode = entry.mode;
  a.packets = entry.count;
  a.end_time = probe_time - static_cast<util::SimTime>(entry.last_seen);
  a.duration = static_cast<util::SimTime>(entry.count) *
               static_cast<util::SimTime>(entry.avg_interval);
  a.start_time = a.end_time - a.duration;
  return a;
}

}  // namespace gorilla::core
