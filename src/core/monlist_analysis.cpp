#include "core/monlist_analysis.h"

#include <algorithm>

namespace gorilla::core {

ClientClass classify_client(const ntp::MonitorEntry& entry) noexcept {
  if (entry.mode < 6) return ClientClass::kNonVictim;
  if (entry.count < 3 || entry.avg_interval > 3600) {
    return ClientClass::kScannerOrLowVolume;
  }
  return ClientClass::kVictim;
}

std::optional<WitnessedAttack> derive_attack(const ntp::MonitorEntry& entry,
                                             util::SimTime probe_time,
                                             net::Ipv4Address amplifier)
    noexcept {
  if (classify_client(entry) != ClientClass::kVictim) return std::nullopt;
  WitnessedAttack a;
  a.victim = entry.address;
  a.amplifier = amplifier;
  a.victim_port = entry.port;
  a.mode = entry.mode;
  a.packets = entry.count;
  // Degraded data (truncated or garbled packets) can carry a last_seen past
  // probe_time; clamp the derived end instead of letting a corrupt entry
  // place it before the sim began. The clamp never fires on clean tables
  // (last_seen is bounded by the observation window). The duration product
  // is overflow-safe without a clamp: classify_client admits only
  // avg_interval <= 3600, so count * avg_interval <= 2^32 * 3600 fits in
  // int64. start_time is deliberately unclamped — §4.3.4 legitimately
  // derives starts before the first sample.
  a.end_time = std::max<util::SimTime>(
      0, probe_time - static_cast<util::SimTime>(entry.last_seen));
  a.duration = static_cast<util::SimTime>(entry.count) *
               static_cast<util::SimTime>(entry.avg_interval);
  a.start_time = a.end_time - a.duration;
  return a;
}

}  // namespace gorilla::core
