#include "core/victims.h"

#include <algorithm>
#include <stdexcept>

#include "util/det.h"

namespace gorilla::core {

VictimAnalysis::VictimAnalysis(const net::Registry& registry,
                               const net::PolicyBlockList& pbl)
    : registry_(registry), pbl_(pbl) {}

void VictimAnalysis::begin_sample(int week, util::Date date) {
  if (sample_open_) throw std::logic_error("VictimAnalysis: sample open");
  sample_open_ = true;
  current_ = VictimSampleRow{};
  current_.week = week;
  current_.date = date;
  cur_victims_.clear();
  cur_windows_.clear();
  cur_durations_.clear();
  cur_scanner_mode6_ = cur_scanner_total_ = 0;
  cur_victim_mode6_ = cur_victim_total_ = 0;
}

void VictimAnalysis::add(const scan::AmplifierObservation& obs) {
  if (!sample_open_) throw std::logic_error("VictimAnalysis: no open sample");
  const auto amp_asn = registry_.asn_of(obs.address);

  std::uint32_t largest_last_seen = 0;
  for (const auto& entry : obs.table) {
    largest_last_seen = std::max(largest_last_seen, entry.last_seen);
    const ClientClass cls = classify_client(entry);
    if (cls == ClientClass::kNonVictim) continue;
    if (cls == ClientClass::kScannerOrLowVolume) {
      ++cur_scanner_total_;
      if (entry.mode == 6) ++cur_scanner_mode6_;
      continue;
    }
    // Victim entry.
    ++cur_victim_total_;
    if (entry.mode == 6) ++cur_victim_mode6_;
    const auto attack = derive_attack(entry, obs.probe_time, obs.address);
    if (!attack) continue;

    auto& v = cur_victims_[entry.address.value()];
    v.packets += attack->packets;
    ++v.amplifiers;
    v.starts.push_back(attack->start_time);

    total_packets_ += attack->packets;
    victim_ever_.insert(entry.address.value());
    ++port_pairs_[entry.port];
    ++port_pairs_total_;
    if (const auto vas = registry_.asn_of(entry.address)) {
      packets_by_victim_as_[*vas] += attack->packets;
    }
    if (amp_asn) {
      packets_by_amplifier_as_[*amp_asn] += attack->packets;
    }
    cur_durations_.add(static_cast<double>(attack->duration));
  }
  if (!obs.table.empty()) {
    cur_windows_.add(static_cast<double>(largest_last_seen));
  }
}

void VictimAnalysis::end_sample() {
  if (!sample_open_) throw std::logic_error("VictimAnalysis: no open sample");

  std::unordered_set<std::uint32_t> victim_blocks;
  std::unordered_set<net::Asn> victim_asns;
  SampleAccumulator packets;
  double amp_sum = 0.0;
  // Visit victims in address order: the per-victim folds below are
  // order-independent, but the row is serialized output, so the walk order
  // must not be left to the hash table.
  for (const std::uint32_t ip_value : util::sorted_keys(cur_victims_)) {
    const auto& v = cur_victims_.at(ip_value);
    const net::Ipv4Address ip{ip_value};
    ++current_.ips;
    if (const auto b = registry_.block_index_of(ip)) victim_blocks.insert(*b);
    if (const auto a = registry_.asn_of(ip)) victim_asns.insert(*a);
    if (pbl_.is_end_host(ip)) ++current_.end_hosts;
    packets.add(static_cast<double>(v.packets));
    amp_sum += static_cast<double>(v.amplifiers);

    // One attack per victim per sample (the paper's simplification); its
    // start is the median start across witnessing amplifiers.
    std::vector<util::SimTime> starts = v.starts;
    std::nth_element(starts.begin(), starts.begin() + starts.size() / 2,
                     starts.end());
    const util::SimTime start = starts[starts.size() / 2];
    const std::int64_t hour = start / util::kSecondsPerHour;
    ++attacks_per_hour_[hour];
  }
  current_.routed_blocks = victim_blocks.size();
  current_.asns = victim_asns.size();
  current_.end_host_pct =
      current_.ips ? 100.0 * static_cast<double>(current_.end_hosts) /
                         static_cast<double>(current_.ips)
                   : 0.0;
  current_.ips_per_block =
      current_.routed_blocks
          ? static_cast<double>(current_.ips) /
                static_cast<double>(current_.routed_blocks)
          : 0.0;
  current_.packets_mean = packets.mean();
  current_.packets_median = packets.quantile(0.5);
  current_.packets_p95 = packets.quantile(0.95);
  current_.amplifiers_per_victim =
      current_.ips ? amp_sum / static_cast<double>(current_.ips) : 0.0;
  current_.median_window_seconds = cur_windows_.quantile(0.5);
  current_.scanner_mode6_share =
      cur_scanner_total_ ? static_cast<double>(cur_scanner_mode6_) /
                               static_cast<double>(cur_scanner_total_)
                         : 0.0;
  current_.victim_mode6_share =
      cur_victim_total_ ? static_cast<double>(cur_victim_mode6_) /
                              static_cast<double>(cur_victim_total_)
                        : 0.0;
  durations_.emplace_back(cur_durations_.quantile(0.5),
                          cur_durations_.quantile(0.95));
  rows_.push_back(current_);
  sample_open_ = false;
}

std::vector<std::pair<std::uint16_t, double>> VictimAnalysis::top_ports(
    std::size_t n) const {
  // Key-sorted items + stable_sort = rank by count with the port number as
  // deterministic tie-break.
  auto counted = util::sorted_items(port_pairs_);
  std::stable_sort(
      counted.begin(), counted.end(),
      [](const auto& a, const auto& b) { return a.second > b.second; });
  std::vector<std::pair<std::uint16_t, double>> out;
  const double total = static_cast<double>(std::max<std::uint64_t>(
      1, port_pairs_total_));
  for (std::size_t i = 0; i < counted.size() && i < n; ++i) {
    out.emplace_back(counted[i].first,
                     static_cast<double>(counted[i].second) / total);
  }
  return out;
}

std::vector<double> VictimAnalysis::victim_as_packets() const {
  std::vector<double> out;
  out.reserve(packets_by_victim_as_.size());
  for (const auto& [_, p] : util::sorted_items(packets_by_victim_as_)) {
    out.push_back(static_cast<double>(p));
  }
  return out;
}

std::vector<double> VictimAnalysis::amplifier_as_packets() const {
  std::vector<double> out;
  out.reserve(packets_by_amplifier_as_.size());
  for (const auto& [_, p] : util::sorted_items(packets_by_amplifier_as_)) {
    out.push_back(static_cast<double>(p));
  }
  return out;
}

std::vector<std::pair<net::Asn, std::uint64_t>>
VictimAnalysis::amplifier_as_breakdown() const {
  return util::sorted_items(packets_by_amplifier_as_);
}

std::vector<std::pair<net::Asn, std::uint64_t>> VictimAnalysis::top_victim_ases(
    std::size_t n) const {
  auto ranked = util::sorted_items(packets_by_victim_as_);
  std::stable_sort(
      ranked.begin(), ranked.end(),
      [](const auto& a, const auto& b) { return a.second > b.second; });
  if (ranked.size() > n) ranked.resize(n);
  return ranked;
}

}  // namespace gorilla::core
