// Amplifier-pool analyses — §3 (population, power, version threat, megas).
//
// AmplifierCensus consumes streamed weekly monlist observations and
// maintains everything §3 reports: per-sample population aggregations
// (IPs, /24s, routed blocks, ASNs — Figure 3 / Table 1), end-host fractions,
// per-sample on-wire BAF boxplots (Figure 4b), the per-amplifier
// bytes-returned rank curve (Figure 4a), churn across samples, and the
// mega-amplifier roster (§3.4). VersionCensus does the same for the mode 6
// version pool (Figure 4c, Table 2, stratum and compile-year census).
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/stats.h"
#include "net/pbl.h"
#include "net/registry.h"
#include "scan/prober.h"
#include "util/time.h"

namespace gorilla::core {

/// The paper's BAF denominator: a minimal query's 84 on-wire bytes (§3.2).
inline constexpr double kBafDenominatorBytes = 84.0;

/// Response size above which an amplifier counts as "mega" for a sample
/// (§3.4: ~10K amplifiers returned >100KB, double the command's maximum).
inline constexpr std::uint64_t kMegaThresholdBytes = 100'000;

struct AmplifierSampleRow {
  int week = 0;
  util::Date date;
  std::uint64_t ips = 0;
  std::uint64_t slash24s = 0;
  std::uint64_t routed_blocks = 0;
  std::uint64_t asns = 0;
  std::uint64_t end_hosts = 0;
  double end_host_pct = 0.0;
  double ips_per_block = 0.0;
  BoxplotSummary baf;            ///< on-wire BAF distribution (Fig 4b)
  double bytes_median = 0.0;     ///< response wire bytes per amplifier
  double bytes_p95 = 0.0;
  double bytes_max = 0.0;
  std::uint64_t mega_count = 0;  ///< responders over kMegaThresholdBytes
  /// Responders whose monlist arrived damaged (dropped/truncated segments).
  /// Zero on a clean scan; under impairment these rows undercount bytes,
  /// and the census reports rather than hides that.
  std::uint64_t partial_tables = 0;
  std::array<std::uint64_t, net::kContinentCount> by_continent{};
};

class AmplifierCensus {
 public:
  AmplifierCensus(const net::Registry& registry,
                  const net::PolicyBlockList& pbl);

  /// Streaming interface: begin_sample, add() for every observation the
  /// prober visits, end_sample to close the row.
  void begin_sample(int week, util::Date date);
  void add(const scan::AmplifierObservation& obs);
  void end_sample();

  [[nodiscard]] const std::vector<AmplifierSampleRow>& rows() const noexcept {
    return rows_;
  }

  /// Churn statistics across all closed samples (§3.1).
  [[nodiscard]] std::uint64_t unique_ips() const noexcept {
    return per_ip_.size();
  }
  [[nodiscard]] double first_sample_fraction() const;  ///< ~0.60 in the paper
  [[nodiscard]] double seen_once_fraction() const;     ///< ~0.5 in the paper

  /// Figure 4a: average response wire bytes per amplifier across its
  /// samples, sorted descending (rank curve).
  [[nodiscard]] std::vector<double> bytes_rank_curve() const;

  /// Mega roster: amplifier IPs whose response exceeded the threshold in
  /// any sample, with their largest single-sample response.
  [[nodiscard]] std::vector<std::pair<net::Ipv4Address, std::uint64_t>>
  mega_roster() const;

  /// Weeks in [0, expected_weeks) with no closed sample row — passes an
  /// impaired scan lost entirely. Consumers flag these and interpolate or
  /// skip; a clean study returns an empty vector.
  [[nodiscard]] std::vector<int> missing_weeks(int expected_weeks) const;

 private:
  struct PerIp {
    std::uint64_t total_bytes = 0;
    std::uint64_t max_bytes = 0;
    std::uint32_t samples_seen = 0;
    bool seen_first_sample = false;
  };

  const net::Registry& registry_;
  const net::PolicyBlockList& pbl_;

  std::vector<AmplifierSampleRow> rows_;
  std::unordered_map<std::uint32_t, PerIp> per_ip_;

  // Open-sample state.
  bool sample_open_ = false;
  AmplifierSampleRow current_;
  std::unordered_set<std::uint32_t> cur_slash24s_;
  std::unordered_set<std::uint32_t> cur_blocks_;
  std::unordered_set<std::uint32_t> cur_asns_;
  SampleAccumulator cur_baf_;
  SampleAccumulator cur_bytes_;
};

struct VersionSampleRow {
  int week = 0;  ///< version-week (0 = 2014-02-21)
  util::Date date;
  std::uint64_t responders_total = 0;
  std::uint64_t responders_detailed = 0;
  BoxplotSummary baf;  ///< Figure 4c
  double bytes_median = 0.0;
};

class VersionCensus {
 public:
  void begin_sample(int vweek, util::Date date);
  void add(const scan::VersionObservation& obs);
  void end_sample(std::uint64_t responders_total);

  [[nodiscard]] const std::vector<VersionSampleRow>& rows() const noexcept {
    return rows_;
  }

  /// Table 2-style OS ranking over all samples: label -> percent.
  [[nodiscard]] std::vector<std::pair<std::string, double>> os_ranking() const;

  /// §3.3: fraction of responders reporting stratum 16 (unsynchronized).
  [[nodiscard]] double stratum16_fraction() const;

  /// §3.3: cumulative fraction of version strings compiled before `year`.
  [[nodiscard]] double compiled_before_fraction(int year) const;

 private:
  std::vector<VersionSampleRow> rows_;
  bool sample_open_ = false;
  VersionSampleRow current_;
  SampleAccumulator cur_baf_;
  SampleAccumulator cur_bytes_;
  std::map<std::string, std::uint64_t> os_counts_;
  std::uint64_t stratum16_ = 0;
  std::uint64_t responders_seen_ = 0;
  std::map<int, std::uint64_t> compile_years_;
  std::uint64_t compile_year_samples_ = 0;
};

}  // namespace gorilla::core
