#include "core/stats.h"

#include <algorithm>
#include <cmath>

namespace gorilla::core {

double quantile_sorted(std::span<const double> sorted, double q) {
  if (sorted.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double quantile(std::span<const double> values, double q) {
  if (values.empty()) return 0.0;
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  return quantile_sorted(sorted, q);
}

double mean(std::span<const double> values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (const double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

BoxplotSummary boxplot(std::span<const double> values) {
  BoxplotSummary s;
  if (values.empty()) return s;
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  s.min = sorted.front();
  s.q1 = quantile_sorted(sorted, 0.25);
  s.median = quantile_sorted(sorted, 0.5);
  s.q3 = quantile_sorted(sorted, 0.75);
  s.max = sorted.back();
  s.count = sorted.size();
  return s;
}

std::vector<CdfPoint> concentration_cdf(
    std::span<const double> contributions) {
  std::vector<double> sorted(contributions.begin(), contributions.end());
  std::sort(sorted.begin(), sorted.end(), std::greater<>());
  double total = 0.0;
  for (const double v : sorted) total += v;
  std::vector<CdfPoint> out;
  if (total <= 0.0) return out;
  out.reserve(sorted.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    acc += sorted[i];
    out.push_back(CdfPoint{i + 1, acc / total});
  }
  return out;
}

double top_k_share(std::span<const double> contributions, std::size_t k) {
  const auto cdf = concentration_cdf(contributions);
  if (cdf.empty()) return 0.0;
  const auto idx = std::min(k, cdf.size()) - 1;
  return k == 0 ? 0.0 : cdf[idx].cumulative;
}

double SampleAccumulator::mean() const { return core::mean(values_); }

double SampleAccumulator::quantile(double q) const {
  return core::quantile(values_, q);
}

BoxplotSummary SampleAccumulator::boxplot() const {
  return core::boxplot(values_);
}

}  // namespace gorilla::core
