#include "core/amplifiers.h"

#include <algorithm>
#include <stdexcept>

#include "ntp/sysinfo.h"
#include "util/det.h"

namespace gorilla::core {

AmplifierCensus::AmplifierCensus(const net::Registry& registry,
                                 const net::PolicyBlockList& pbl)
    : registry_(registry), pbl_(pbl) {}

void AmplifierCensus::begin_sample(int week, util::Date date) {
  if (sample_open_)
    throw std::logic_error("AmplifierCensus: sample already open");
  sample_open_ = true;
  current_ = AmplifierSampleRow{};
  current_.week = week;
  current_.date = date;
  cur_slash24s_.clear();
  cur_blocks_.clear();
  cur_asns_.clear();
  cur_baf_.clear();
  cur_bytes_.clear();
}

void AmplifierCensus::add(const scan::AmplifierObservation& obs) {
  if (!sample_open_)
    throw std::logic_error("AmplifierCensus: no open sample");
  ++current_.ips;
  cur_slash24s_.insert(obs.address.value() >> 8);
  if (const auto block = registry_.block_index_of(obs.address)) {
    cur_blocks_.insert(*block);
  }
  if (const auto asn = registry_.asn_of(obs.address)) {
    cur_asns_.insert(*asn);
  }
  if (const auto cont = registry_.continent_of(obs.address)) {
    ++current_.by_continent[static_cast<std::size_t>(*cont)];
  }
  if (pbl_.is_end_host(obs.address)) ++current_.end_hosts;

  const double bytes = static_cast<double>(obs.response_wire_bytes);
  cur_bytes_.add(bytes);
  cur_baf_.add(bytes / kBafDenominatorBytes);
  if (obs.response_wire_bytes > kMegaThresholdBytes) ++current_.mega_count;
  if (obs.table_partial) ++current_.partial_tables;

  auto& per_ip = per_ip_[obs.address.value()];
  per_ip.total_bytes += obs.response_wire_bytes;
  per_ip.max_bytes = std::max(per_ip.max_bytes, obs.response_wire_bytes);
  ++per_ip.samples_seen;
  if (rows_.empty()) per_ip.seen_first_sample = true;
}

void AmplifierCensus::end_sample() {
  if (!sample_open_)
    throw std::logic_error("AmplifierCensus: no open sample");
  current_.slash24s = cur_slash24s_.size();
  current_.routed_blocks = cur_blocks_.size();
  current_.asns = cur_asns_.size();
  current_.end_host_pct =
      current_.ips ? 100.0 * static_cast<double>(current_.end_hosts) /
                         static_cast<double>(current_.ips)
                   : 0.0;
  current_.ips_per_block =
      current_.routed_blocks
          ? static_cast<double>(current_.ips) /
                static_cast<double>(current_.routed_blocks)
          : 0.0;
  current_.baf = cur_baf_.boxplot();
  current_.bytes_median = cur_bytes_.quantile(0.5);
  current_.bytes_p95 = cur_bytes_.quantile(0.95);
  current_.bytes_max = cur_bytes_.quantile(1.0);
  rows_.push_back(current_);
  sample_open_ = false;
}

double AmplifierCensus::first_sample_fraction() const {
  if (per_ip_.empty()) return 0.0;
  std::uint64_t first = 0;
  // Order-independent count over the roster.
  for (const auto& [_, info] : per_ip_) {  // NOLINT(unordered-iter)
    if (info.seen_first_sample) ++first;
  }
  return static_cast<double>(first) / static_cast<double>(per_ip_.size());
}

double AmplifierCensus::seen_once_fraction() const {
  if (per_ip_.empty()) return 0.0;
  std::uint64_t once = 0;
  // Order-independent count over the roster.
  for (const auto& [_, info] : per_ip_) {  // NOLINT(unordered-iter)
    if (info.samples_seen == 1) ++once;
  }
  return static_cast<double>(once) / static_cast<double>(per_ip_.size());
}

std::vector<double> AmplifierCensus::bytes_rank_curve() const {
  std::vector<double> curve;
  curve.reserve(per_ip_.size());
  // The sort below erases the visit order (equal doubles are
  // indistinguishable), so the hash-order walk cannot reach the output.
  for (const auto& [_, info] : per_ip_) {  // NOLINT(unordered-iter)
    curve.push_back(static_cast<double>(info.total_bytes) /
                    static_cast<double>(info.samples_seen));
  }
  std::sort(curve.begin(), curve.end(), std::greater<>());
  return curve;
}

std::vector<std::pair<net::Ipv4Address, std::uint64_t>>
AmplifierCensus::mega_roster() const {
  // Address-sorted items + stable_sort = rank by peak response size with
  // the address as deterministic tie-break.
  std::vector<std::pair<net::Ipv4Address, std::uint64_t>> roster;
  for (const auto& [addr, info] : util::sorted_items(per_ip_)) {
    if (info.max_bytes > kMegaThresholdBytes) {
      roster.emplace_back(net::Ipv4Address{addr}, info.max_bytes);
    }
  }
  std::stable_sort(
      roster.begin(), roster.end(),
      [](const auto& a, const auto& b) { return a.second > b.second; });
  return roster;
}

std::vector<int> AmplifierCensus::missing_weeks(int expected_weeks) const {
  std::vector<int> missing;
  for (int w = 0; w < expected_weeks; ++w) {
    const bool present =
        std::any_of(rows_.begin(), rows_.end(),
                    [w](const AmplifierSampleRow& r) { return r.week == w; });
    if (!present) missing.push_back(w);
  }
  return missing;
}

void VersionCensus::begin_sample(int vweek, util::Date date) {
  if (sample_open_)
    throw std::logic_error("VersionCensus: sample already open");
  sample_open_ = true;
  current_ = VersionSampleRow{};
  current_.week = vweek;
  current_.date = date;
  cur_baf_.clear();
  cur_bytes_.clear();
}

void VersionCensus::add(const scan::VersionObservation& obs) {
  if (!sample_open_)
    throw std::logic_error("VersionCensus: no open sample");
  ++current_.responders_detailed;
  ++responders_seen_;
  const double bytes = static_cast<double>(obs.response_wire_bytes);
  cur_bytes_.add(bytes);
  cur_baf_.add(bytes / kBafDenominatorBytes);
  ++os_counts_[ntp::normalize_os_label(obs.system)];
  if (obs.stratum == ntp::kStratumUnsynchronized) ++stratum16_;
  if (const int year = ntp::extract_compile_year(obs.version); year > 0) {
    ++compile_years_[year];
    ++compile_year_samples_;
  }
}

void VersionCensus::end_sample(std::uint64_t responders_total) {
  if (!sample_open_)
    throw std::logic_error("VersionCensus: no open sample");
  current_.responders_total = responders_total;
  current_.baf = cur_baf_.boxplot();
  current_.bytes_median = cur_bytes_.quantile(0.5);
  rows_.push_back(current_);
  sample_open_ = false;
}

std::vector<std::pair<std::string, double>> VersionCensus::os_ranking() const {
  std::uint64_t total = 0;
  for (const auto& [_, n] : os_counts_) total += n;
  std::vector<std::pair<std::string, double>> ranking;
  for (const auto& [label, n] : os_counts_) {
    ranking.emplace_back(label, total ? 100.0 * static_cast<double>(n) /
                                            static_cast<double>(total)
                                      : 0.0);
  }
  std::sort(ranking.begin(), ranking.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  return ranking;
}

double VersionCensus::stratum16_fraction() const {
  return responders_seen_ ? static_cast<double>(stratum16_) /
                                static_cast<double>(responders_seen_)
                          : 0.0;
}

double VersionCensus::compiled_before_fraction(int year) const {
  if (compile_year_samples_ == 0) return 0.0;
  std::uint64_t before = 0;
  for (const auto& [y, n] : compile_years_) {
    if (y < year) before += n;
  }
  return static_cast<double>(before) /
         static_cast<double>(compile_year_samples_);
}

}  // namespace gorilla::core
