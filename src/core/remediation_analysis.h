// Remediation analyses — §6.
//
// Three results: (1) subgroup remediation rates — how much slower the pool
// shrinks when aggregated at /24, routed-block, and AS level, per continent,
// and by host type; (2) the Figure 10 cross-pool comparison — monlist vs
// version vs open DNS resolvers, aligned on weeks since publicity and
// normalized to each pool's peak; (3) the §6.3 effect measurements —
// amplifiers seen per victim and packets sent per amplifier over time.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/amplifiers.h"
#include "core/victims.h"
#include "net/ipv4.h"

namespace gorilla::core {

/// Percentage reduction between the first and last closed samples at each
/// aggregation level (the paper: IPs 92%, /24s 72%, blocks 59%, ASes 55%).
struct LevelReduction {
  double ips_pct = 0.0;
  double slash24_pct = 0.0;
  double blocks_pct = 0.0;
  double asns_pct = 0.0;
};

[[nodiscard]] LevelReduction level_reduction(const AmplifierCensus& census);

/// Per-continent remediated percentage between first and last samples.
struct ContinentReduction {
  net::Continent continent{};
  double remediated_pct = 0.0;
};

[[nodiscard]] std::vector<ContinentReduction> continent_reduction(
    const AmplifierCensus& census);

/// A pool-size series normalized to its own peak (Figure 10's y-axis).
struct PoolSeries {
  std::string name;
  std::uint64_t peak = 0;
  std::vector<double> relative_to_peak;  ///< one point per week since start
};

[[nodiscard]] PoolSeries make_pool_series(std::string name,
                                          const std::vector<std::uint64_t>&
                                              weekly_counts);

/// §6.3: per-sample mean amplifiers per victim and packets per amplifier
/// (victim packets that sample / amplifier count that sample).
struct RemediationEffectRow {
  int week = 0;
  double amplifiers_per_victim = 0.0;
  double packets_per_amplifier = 0.0;
  double victim_packets_p95 = 0.0;
};

[[nodiscard]] std::vector<RemediationEffectRow> remediation_effect(
    const AmplifierCensus& census, const VictimAnalysis& victims);

/// §4.4's cross-dataset validation: a third party (CloudFlare, for the
/// February 10th attack) publishes the list of ASes whose amplifiers hit
/// it; we check how many of those ASes our census independently saw, and
/// what share of ALL victim packets those ASes' amplifiers carried.
/// (Paper: 1,291 of 1,297 published ASes overlapped the ONP's 16,687, and
/// carried 60% of all victim packets.)
struct CrossDatasetValidation {
  std::size_t published_ases = 0;
  std::size_t overlapping_ases = 0;
  double overlap_fraction = 0.0;
  double packet_share_of_total = 0.0;
};

[[nodiscard]] CrossDatasetValidation validate_published_as_list(
    std::vector<net::Asn> published, const VictimAnalysis& victims);

/// Overlap of two IP pools (§6.2's monlist-vs-open-resolver intersection).
struct PoolOverlap {
  std::uint64_t intersection = 0;
  double fraction_of_first = 0.0;
};

[[nodiscard]] PoolOverlap pool_overlap(std::vector<net::Ipv4Address> a,
                                       std::vector<net::Ipv4Address> b);

}  // namespace gorilla::core
