# Empty compiler generated dependencies file for fig07_attack_timeseries.
# This may be replaced when dependencies are built.
