file(REMOVE_RECURSE
  "CMakeFiles/fig07_attack_timeseries.dir/fig07_attack_timeseries.cpp.o"
  "CMakeFiles/fig07_attack_timeseries.dir/fig07_attack_timeseries.cpp.o.d"
  "fig07_attack_timeseries"
  "fig07_attack_timeseries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_attack_timeseries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
