file(REMOVE_RECURSE
  "CMakeFiles/fig14_merit_protocols.dir/fig14_merit_protocols.cpp.o"
  "CMakeFiles/fig14_merit_protocols.dir/fig14_merit_protocols.cpp.o.d"
  "fig14_merit_protocols"
  "fig14_merit_protocols.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_merit_protocols.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
