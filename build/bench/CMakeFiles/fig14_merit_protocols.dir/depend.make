# Empty dependencies file for fig14_merit_protocols.
# This may be replaced when dependencies are built.
