# Empty compiler generated dependencies file for fig09_scanners_vs_egress.
# This may be replaced when dependencies are built.
