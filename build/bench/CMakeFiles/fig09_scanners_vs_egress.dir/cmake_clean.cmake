file(REMOVE_RECURSE
  "CMakeFiles/fig09_scanners_vs_egress.dir/fig09_scanners_vs_egress.cpp.o"
  "CMakeFiles/fig09_scanners_vs_egress.dir/fig09_scanners_vs_egress.cpp.o.d"
  "fig09_scanners_vs_egress"
  "fig09_scanners_vs_egress.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_scanners_vs_egress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
