# Empty compiler generated dependencies file for fig16_common_scanners.
# This may be replaced when dependencies are built.
