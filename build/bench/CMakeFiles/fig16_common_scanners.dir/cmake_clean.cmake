file(REMOVE_RECURSE
  "CMakeFiles/fig16_common_scanners.dir/fig16_common_scanners.cpp.o"
  "CMakeFiles/fig16_common_scanners.dir/fig16_common_scanners.cpp.o.d"
  "fig16_common_scanners"
  "fig16_common_scanners.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_common_scanners.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
