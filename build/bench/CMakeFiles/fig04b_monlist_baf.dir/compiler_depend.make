# Empty compiler generated dependencies file for fig04b_monlist_baf.
# This may be replaced when dependencies are built.
