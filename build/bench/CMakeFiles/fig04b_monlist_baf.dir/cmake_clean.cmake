file(REMOVE_RECURSE
  "CMakeFiles/fig04b_monlist_baf.dir/fig04b_monlist_baf.cpp.o"
  "CMakeFiles/fig04b_monlist_baf.dir/fig04b_monlist_baf.cpp.o.d"
  "fig04b_monlist_baf"
  "fig04b_monlist_baf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04b_monlist_baf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
