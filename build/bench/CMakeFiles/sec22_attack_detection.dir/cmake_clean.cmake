file(REMOVE_RECURSE
  "CMakeFiles/sec22_attack_detection.dir/sec22_attack_detection.cpp.o"
  "CMakeFiles/sec22_attack_detection.dir/sec22_attack_detection.cpp.o.d"
  "sec22_attack_detection"
  "sec22_attack_detection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec22_attack_detection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
