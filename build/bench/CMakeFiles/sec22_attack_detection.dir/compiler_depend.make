# Empty compiler generated dependencies file for sec22_attack_detection.
# This may be replaced when dependencies are built.
