# Empty dependencies file for fig02_attack_fractions.
# This may be replaced when dependencies are built.
