file(REMOVE_RECURSE
  "CMakeFiles/fig02_attack_fractions.dir/fig02_attack_fractions.cpp.o"
  "CMakeFiles/fig02_attack_fractions.dir/fig02_attack_fractions.cpp.o.d"
  "fig02_attack_fractions"
  "fig02_attack_fractions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_attack_fractions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
