file(REMOVE_RECURSE
  "CMakeFiles/fig10_remediation_compare.dir/fig10_remediation_compare.cpp.o"
  "CMakeFiles/fig10_remediation_compare.dir/fig10_remediation_compare.cpp.o.d"
  "fig10_remediation_compare"
  "fig10_remediation_compare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_remediation_compare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
