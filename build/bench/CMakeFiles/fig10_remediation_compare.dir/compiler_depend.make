# Empty compiler generated dependencies file for fig10_remediation_compare.
# This may be replaced when dependencies are built.
