file(REMOVE_RECURSE
  "CMakeFiles/tab02_os_strings.dir/tab02_os_strings.cpp.o"
  "CMakeFiles/tab02_os_strings.dir/tab02_os_strings.cpp.o.d"
  "tab02_os_strings"
  "tab02_os_strings.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab02_os_strings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
