# Empty dependencies file for tab02_os_strings.
# This may be replaced when dependencies are built.
