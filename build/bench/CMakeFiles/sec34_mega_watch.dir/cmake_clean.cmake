file(REMOVE_RECURSE
  "CMakeFiles/sec34_mega_watch.dir/sec34_mega_watch.cpp.o"
  "CMakeFiles/sec34_mega_watch.dir/sec34_mega_watch.cpp.o.d"
  "sec34_mega_watch"
  "sec34_mega_watch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec34_mega_watch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
