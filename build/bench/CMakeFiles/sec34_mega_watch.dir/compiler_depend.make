# Empty compiler generated dependencies file for sec34_mega_watch.
# This may be replaced when dependencies are built.
