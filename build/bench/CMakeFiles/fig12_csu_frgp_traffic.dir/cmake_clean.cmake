file(REMOVE_RECURSE
  "CMakeFiles/fig12_csu_frgp_traffic.dir/fig12_csu_frgp_traffic.cpp.o"
  "CMakeFiles/fig12_csu_frgp_traffic.dir/fig12_csu_frgp_traffic.cpp.o.d"
  "fig12_csu_frgp_traffic"
  "fig12_csu_frgp_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_csu_frgp_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
