# Empty compiler generated dependencies file for fig12_csu_frgp_traffic.
# This may be replaced when dependencies are built.
