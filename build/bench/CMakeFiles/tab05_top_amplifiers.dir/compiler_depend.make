# Empty compiler generated dependencies file for tab05_top_amplifiers.
# This may be replaced when dependencies are built.
