file(REMOVE_RECURSE
  "CMakeFiles/tab05_top_amplifiers.dir/tab05_top_amplifiers.cpp.o"
  "CMakeFiles/tab05_top_amplifiers.dir/tab05_top_amplifiers.cpp.o.d"
  "tab05_top_amplifiers"
  "tab05_top_amplifiers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab05_top_amplifiers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
