# Empty dependencies file for sec44_validation.
# This may be replaced when dependencies are built.
