file(REMOVE_RECURSE
  "CMakeFiles/sec44_validation.dir/sec44_validation.cpp.o"
  "CMakeFiles/sec44_validation.dir/sec44_validation.cpp.o.d"
  "sec44_validation"
  "sec44_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec44_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
