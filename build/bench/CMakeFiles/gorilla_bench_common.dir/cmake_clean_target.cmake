file(REMOVE_RECURSE
  "libgorilla_bench_common.a"
)
