file(REMOVE_RECURSE
  "CMakeFiles/gorilla_bench_common.dir/common.cpp.o"
  "CMakeFiles/gorilla_bench_common.dir/common.cpp.o.d"
  "libgorilla_bench_common.a"
  "libgorilla_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gorilla_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
