# Empty dependencies file for gorilla_bench_common.
# This may be replaced when dependencies are built.
