# Empty dependencies file for fig06_victim_packets.
# This may be replaced when dependencies are built.
