file(REMOVE_RECURSE
  "CMakeFiles/fig06_victim_packets.dir/fig06_victim_packets.cpp.o"
  "CMakeFiles/fig06_victim_packets.dir/fig06_victim_packets.cpp.o.d"
  "fig06_victim_packets"
  "fig06_victim_packets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_victim_packets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
