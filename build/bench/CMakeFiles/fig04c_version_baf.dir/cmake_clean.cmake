file(REMOVE_RECURSE
  "CMakeFiles/fig04c_version_baf.dir/fig04c_version_baf.cpp.o"
  "CMakeFiles/fig04c_version_baf.dir/fig04c_version_baf.cpp.o.d"
  "fig04c_version_baf"
  "fig04c_version_baf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04c_version_baf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
