# Empty compiler generated dependencies file for fig04c_version_baf.
# This may be replaced when dependencies are built.
