# Empty dependencies file for fig01_global_traffic.
# This may be replaced when dependencies are built.
