file(REMOVE_RECURSE
  "CMakeFiles/fig01_global_traffic.dir/fig01_global_traffic.cpp.o"
  "CMakeFiles/fig01_global_traffic.dir/fig01_global_traffic.cpp.o.d"
  "fig01_global_traffic"
  "fig01_global_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_global_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
