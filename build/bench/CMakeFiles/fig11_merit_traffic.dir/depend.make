# Empty dependencies file for fig11_merit_traffic.
# This may be replaced when dependencies are built.
