file(REMOVE_RECURSE
  "CMakeFiles/fig11_merit_traffic.dir/fig11_merit_traffic.cpp.o"
  "CMakeFiles/fig11_merit_traffic.dir/fig11_merit_traffic.cpp.o.d"
  "fig11_merit_traffic"
  "fig11_merit_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_merit_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
