file(REMOVE_RECURSE
  "CMakeFiles/tab01_populations.dir/tab01_populations.cpp.o"
  "CMakeFiles/tab01_populations.dir/tab01_populations.cpp.o.d"
  "tab01_populations"
  "tab01_populations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab01_populations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
