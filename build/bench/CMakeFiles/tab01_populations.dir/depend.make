# Empty dependencies file for tab01_populations.
# This may be replaced when dependencies are built.
