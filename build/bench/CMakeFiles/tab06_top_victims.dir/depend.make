# Empty dependencies file for tab06_top_victims.
# This may be replaced when dependencies are built.
