file(REMOVE_RECURSE
  "CMakeFiles/tab06_top_victims.dir/tab06_top_victims.cpp.o"
  "CMakeFiles/tab06_top_victims.dir/tab06_top_victims.cpp.o.d"
  "tab06_top_victims"
  "tab06_top_victims.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab06_top_victims.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
