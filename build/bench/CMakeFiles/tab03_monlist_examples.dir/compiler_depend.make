# Empty compiler generated dependencies file for tab03_monlist_examples.
# This may be replaced when dependencies are built.
