file(REMOVE_RECURSE
  "CMakeFiles/tab03_monlist_examples.dir/tab03_monlist_examples.cpp.o"
  "CMakeFiles/tab03_monlist_examples.dir/tab03_monlist_examples.cpp.o.d"
  "tab03_monlist_examples"
  "tab03_monlist_examples.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab03_monlist_examples.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
