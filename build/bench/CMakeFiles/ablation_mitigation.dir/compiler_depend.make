# Empty compiler generated dependencies file for ablation_mitigation.
# This may be replaced when dependencies are built.
