file(REMOVE_RECURSE
  "CMakeFiles/fig08_darknet_volume.dir/fig08_darknet_volume.cpp.o"
  "CMakeFiles/fig08_darknet_volume.dir/fig08_darknet_volume.cpp.o.d"
  "fig08_darknet_volume"
  "fig08_darknet_volume.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_darknet_volume.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
