# Empty compiler generated dependencies file for fig08_darknet_volume.
# This may be replaced when dependencies are built.
