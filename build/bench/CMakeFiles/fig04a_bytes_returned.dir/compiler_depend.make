# Empty compiler generated dependencies file for fig04a_bytes_returned.
# This may be replaced when dependencies are built.
