file(REMOVE_RECURSE
  "CMakeFiles/fig04a_bytes_returned.dir/fig04a_bytes_returned.cpp.o"
  "CMakeFiles/fig04a_bytes_returned.dir/fig04a_bytes_returned.cpp.o.d"
  "fig04a_bytes_returned"
  "fig04a_bytes_returned.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04a_bytes_returned.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
