file(REMOVE_RECURSE
  "CMakeFiles/fig03_amplifier_counts.dir/fig03_amplifier_counts.cpp.o"
  "CMakeFiles/fig03_amplifier_counts.dir/fig03_amplifier_counts.cpp.o.d"
  "fig03_amplifier_counts"
  "fig03_amplifier_counts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_amplifier_counts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
