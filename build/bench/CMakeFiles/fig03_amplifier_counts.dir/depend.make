# Empty dependencies file for fig03_amplifier_counts.
# This may be replaced when dependencies are built.
