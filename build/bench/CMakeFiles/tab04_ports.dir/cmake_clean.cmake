file(REMOVE_RECURSE
  "CMakeFiles/tab04_ports.dir/tab04_ports.cpp.o"
  "CMakeFiles/tab04_ports.dir/tab04_ports.cpp.o.d"
  "tab04_ports"
  "tab04_ports.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab04_ports.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
