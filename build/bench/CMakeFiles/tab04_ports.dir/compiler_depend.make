# Empty compiler generated dependencies file for tab04_ports.
# This may be replaced when dependencies are built.
