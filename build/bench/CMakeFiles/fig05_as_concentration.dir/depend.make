# Empty dependencies file for fig05_as_concentration.
# This may be replaced when dependencies are built.
