file(REMOVE_RECURSE
  "CMakeFiles/fig05_as_concentration.dir/fig05_as_concentration.cpp.o"
  "CMakeFiles/fig05_as_concentration.dir/fig05_as_concentration.cpp.o.d"
  "fig05_as_concentration"
  "fig05_as_concentration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_as_concentration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
