
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/perf_kernels.cpp" "bench/CMakeFiles/perf_kernels.dir/perf_kernels.cpp.o" "gcc" "bench/CMakeFiles/perf_kernels.dir/perf_kernels.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/scan/CMakeFiles/gorilla_scan.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/gorilla_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/telemetry/CMakeFiles/gorilla_telemetry.dir/DependInfo.cmake"
  "/root/repo/build/src/dns/CMakeFiles/gorilla_dns.dir/DependInfo.cmake"
  "/root/repo/build/src/ntp/CMakeFiles/gorilla_ntp.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/gorilla_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/gorilla_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
