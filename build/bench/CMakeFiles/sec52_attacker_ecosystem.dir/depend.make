# Empty dependencies file for sec52_attacker_ecosystem.
# This may be replaced when dependencies are built.
