file(REMOVE_RECURSE
  "CMakeFiles/sec52_attacker_ecosystem.dir/sec52_attacker_ecosystem.cpp.o"
  "CMakeFiles/sec52_attacker_ecosystem.dir/sec52_attacker_ecosystem.cpp.o.d"
  "sec52_attacker_ecosystem"
  "sec52_attacker_ecosystem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec52_attacker_ecosystem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
