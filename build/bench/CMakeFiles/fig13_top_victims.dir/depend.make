# Empty dependencies file for fig13_top_victims.
# This may be replaced when dependencies are built.
