file(REMOVE_RECURSE
  "CMakeFiles/fig13_top_victims.dir/fig13_top_victims.cpp.o"
  "CMakeFiles/fig13_top_victims.dir/fig13_top_victims.cpp.o.d"
  "fig13_top_victims"
  "fig13_top_victims.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_top_victims.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
