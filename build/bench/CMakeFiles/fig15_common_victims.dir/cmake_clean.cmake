file(REMOVE_RECURSE
  "CMakeFiles/fig15_common_victims.dir/fig15_common_victims.cpp.o"
  "CMakeFiles/fig15_common_victims.dir/fig15_common_victims.cpp.o.d"
  "fig15_common_victims"
  "fig15_common_victims.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_common_victims.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
