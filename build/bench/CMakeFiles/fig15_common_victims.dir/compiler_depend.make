# Empty compiler generated dependencies file for fig15_common_victims.
# This may be replaced when dependencies are built.
