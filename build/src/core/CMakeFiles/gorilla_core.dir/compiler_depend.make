# Empty compiler generated dependencies file for gorilla_core.
# This may be replaced when dependencies are built.
