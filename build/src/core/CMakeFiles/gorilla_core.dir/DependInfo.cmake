
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/amplifiers.cpp" "src/core/CMakeFiles/gorilla_core.dir/amplifiers.cpp.o" "gcc" "src/core/CMakeFiles/gorilla_core.dir/amplifiers.cpp.o.d"
  "/root/repo/src/core/episodes.cpp" "src/core/CMakeFiles/gorilla_core.dir/episodes.cpp.o" "gcc" "src/core/CMakeFiles/gorilla_core.dir/episodes.cpp.o.d"
  "/root/repo/src/core/local_view.cpp" "src/core/CMakeFiles/gorilla_core.dir/local_view.cpp.o" "gcc" "src/core/CMakeFiles/gorilla_core.dir/local_view.cpp.o.d"
  "/root/repo/src/core/monlist_analysis.cpp" "src/core/CMakeFiles/gorilla_core.dir/monlist_analysis.cpp.o" "gcc" "src/core/CMakeFiles/gorilla_core.dir/monlist_analysis.cpp.o.d"
  "/root/repo/src/core/remediation_analysis.cpp" "src/core/CMakeFiles/gorilla_core.dir/remediation_analysis.cpp.o" "gcc" "src/core/CMakeFiles/gorilla_core.dir/remediation_analysis.cpp.o.d"
  "/root/repo/src/core/stats.cpp" "src/core/CMakeFiles/gorilla_core.dir/stats.cpp.o" "gcc" "src/core/CMakeFiles/gorilla_core.dir/stats.cpp.o.d"
  "/root/repo/src/core/victims.cpp" "src/core/CMakeFiles/gorilla_core.dir/victims.cpp.o" "gcc" "src/core/CMakeFiles/gorilla_core.dir/victims.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/scan/CMakeFiles/gorilla_scan.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/gorilla_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/telemetry/CMakeFiles/gorilla_telemetry.dir/DependInfo.cmake"
  "/root/repo/build/src/ntp/CMakeFiles/gorilla_ntp.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/gorilla_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/gorilla_util.dir/DependInfo.cmake"
  "/root/repo/build/src/dns/CMakeFiles/gorilla_dns.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
