file(REMOVE_RECURSE
  "libgorilla_core.a"
)
