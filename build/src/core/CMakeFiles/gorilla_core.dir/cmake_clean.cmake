file(REMOVE_RECURSE
  "CMakeFiles/gorilla_core.dir/amplifiers.cpp.o"
  "CMakeFiles/gorilla_core.dir/amplifiers.cpp.o.d"
  "CMakeFiles/gorilla_core.dir/episodes.cpp.o"
  "CMakeFiles/gorilla_core.dir/episodes.cpp.o.d"
  "CMakeFiles/gorilla_core.dir/local_view.cpp.o"
  "CMakeFiles/gorilla_core.dir/local_view.cpp.o.d"
  "CMakeFiles/gorilla_core.dir/monlist_analysis.cpp.o"
  "CMakeFiles/gorilla_core.dir/monlist_analysis.cpp.o.d"
  "CMakeFiles/gorilla_core.dir/remediation_analysis.cpp.o"
  "CMakeFiles/gorilla_core.dir/remediation_analysis.cpp.o.d"
  "CMakeFiles/gorilla_core.dir/stats.cpp.o"
  "CMakeFiles/gorilla_core.dir/stats.cpp.o.d"
  "CMakeFiles/gorilla_core.dir/victims.cpp.o"
  "CMakeFiles/gorilla_core.dir/victims.cpp.o.d"
  "libgorilla_core.a"
  "libgorilla_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gorilla_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
