# Empty dependencies file for gorilla_util.
# This may be replaced when dependencies are built.
