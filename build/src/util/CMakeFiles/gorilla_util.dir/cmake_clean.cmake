file(REMOVE_RECURSE
  "CMakeFiles/gorilla_util.dir/csv.cpp.o"
  "CMakeFiles/gorilla_util.dir/csv.cpp.o.d"
  "CMakeFiles/gorilla_util.dir/format.cpp.o"
  "CMakeFiles/gorilla_util.dir/format.cpp.o.d"
  "CMakeFiles/gorilla_util.dir/rng.cpp.o"
  "CMakeFiles/gorilla_util.dir/rng.cpp.o.d"
  "CMakeFiles/gorilla_util.dir/time.cpp.o"
  "CMakeFiles/gorilla_util.dir/time.cpp.o.d"
  "libgorilla_util.a"
  "libgorilla_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gorilla_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
