file(REMOVE_RECURSE
  "libgorilla_util.a"
)
