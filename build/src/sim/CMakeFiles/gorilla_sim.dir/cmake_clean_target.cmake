file(REMOVE_RECURSE
  "libgorilla_sim.a"
)
