# Empty compiler generated dependencies file for gorilla_sim.
# This may be replaced when dependencies are built.
