
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/attack.cpp" "src/sim/CMakeFiles/gorilla_sim.dir/attack.cpp.o" "gcc" "src/sim/CMakeFiles/gorilla_sim.dir/attack.cpp.o.d"
  "/root/repo/src/sim/remediation.cpp" "src/sim/CMakeFiles/gorilla_sim.dir/remediation.cpp.o" "gcc" "src/sim/CMakeFiles/gorilla_sim.dir/remediation.cpp.o.d"
  "/root/repo/src/sim/scanner.cpp" "src/sim/CMakeFiles/gorilla_sim.dir/scanner.cpp.o" "gcc" "src/sim/CMakeFiles/gorilla_sim.dir/scanner.cpp.o.d"
  "/root/repo/src/sim/world.cpp" "src/sim/CMakeFiles/gorilla_sim.dir/world.cpp.o" "gcc" "src/sim/CMakeFiles/gorilla_sim.dir/world.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ntp/CMakeFiles/gorilla_ntp.dir/DependInfo.cmake"
  "/root/repo/build/src/dns/CMakeFiles/gorilla_dns.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/gorilla_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/gorilla_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
