file(REMOVE_RECURSE
  "CMakeFiles/gorilla_sim.dir/attack.cpp.o"
  "CMakeFiles/gorilla_sim.dir/attack.cpp.o.d"
  "CMakeFiles/gorilla_sim.dir/remediation.cpp.o"
  "CMakeFiles/gorilla_sim.dir/remediation.cpp.o.d"
  "CMakeFiles/gorilla_sim.dir/scanner.cpp.o"
  "CMakeFiles/gorilla_sim.dir/scanner.cpp.o.d"
  "CMakeFiles/gorilla_sim.dir/world.cpp.o"
  "CMakeFiles/gorilla_sim.dir/world.cpp.o.d"
  "libgorilla_sim.a"
  "libgorilla_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gorilla_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
