file(REMOVE_RECURSE
  "CMakeFiles/gorilla_net.dir/ipv4.cpp.o"
  "CMakeFiles/gorilla_net.dir/ipv4.cpp.o.d"
  "CMakeFiles/gorilla_net.dir/ipv6.cpp.o"
  "CMakeFiles/gorilla_net.dir/ipv6.cpp.o.d"
  "CMakeFiles/gorilla_net.dir/packet.cpp.o"
  "CMakeFiles/gorilla_net.dir/packet.cpp.o.d"
  "CMakeFiles/gorilla_net.dir/pbl.cpp.o"
  "CMakeFiles/gorilla_net.dir/pbl.cpp.o.d"
  "CMakeFiles/gorilla_net.dir/pcap.cpp.o"
  "CMakeFiles/gorilla_net.dir/pcap.cpp.o.d"
  "CMakeFiles/gorilla_net.dir/registry.cpp.o"
  "CMakeFiles/gorilla_net.dir/registry.cpp.o.d"
  "libgorilla_net.a"
  "libgorilla_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gorilla_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
