# Empty compiler generated dependencies file for gorilla_net.
# This may be replaced when dependencies are built.
