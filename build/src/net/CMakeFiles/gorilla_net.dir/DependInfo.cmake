
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/ipv4.cpp" "src/net/CMakeFiles/gorilla_net.dir/ipv4.cpp.o" "gcc" "src/net/CMakeFiles/gorilla_net.dir/ipv4.cpp.o.d"
  "/root/repo/src/net/ipv6.cpp" "src/net/CMakeFiles/gorilla_net.dir/ipv6.cpp.o" "gcc" "src/net/CMakeFiles/gorilla_net.dir/ipv6.cpp.o.d"
  "/root/repo/src/net/packet.cpp" "src/net/CMakeFiles/gorilla_net.dir/packet.cpp.o" "gcc" "src/net/CMakeFiles/gorilla_net.dir/packet.cpp.o.d"
  "/root/repo/src/net/pbl.cpp" "src/net/CMakeFiles/gorilla_net.dir/pbl.cpp.o" "gcc" "src/net/CMakeFiles/gorilla_net.dir/pbl.cpp.o.d"
  "/root/repo/src/net/pcap.cpp" "src/net/CMakeFiles/gorilla_net.dir/pcap.cpp.o" "gcc" "src/net/CMakeFiles/gorilla_net.dir/pcap.cpp.o.d"
  "/root/repo/src/net/registry.cpp" "src/net/CMakeFiles/gorilla_net.dir/registry.cpp.o" "gcc" "src/net/CMakeFiles/gorilla_net.dir/registry.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/gorilla_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
