file(REMOVE_RECURSE
  "libgorilla_net.a"
)
