file(REMOVE_RECURSE
  "libgorilla_ntp.a"
)
