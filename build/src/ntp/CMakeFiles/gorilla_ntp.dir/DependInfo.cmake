
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ntp/client.cpp" "src/ntp/CMakeFiles/gorilla_ntp.dir/client.cpp.o" "gcc" "src/ntp/CMakeFiles/gorilla_ntp.dir/client.cpp.o.d"
  "/root/repo/src/ntp/mode6.cpp" "src/ntp/CMakeFiles/gorilla_ntp.dir/mode6.cpp.o" "gcc" "src/ntp/CMakeFiles/gorilla_ntp.dir/mode6.cpp.o.d"
  "/root/repo/src/ntp/mode7.cpp" "src/ntp/CMakeFiles/gorilla_ntp.dir/mode7.cpp.o" "gcc" "src/ntp/CMakeFiles/gorilla_ntp.dir/mode7.cpp.o.d"
  "/root/repo/src/ntp/monlist.cpp" "src/ntp/CMakeFiles/gorilla_ntp.dir/monlist.cpp.o" "gcc" "src/ntp/CMakeFiles/gorilla_ntp.dir/monlist.cpp.o.d"
  "/root/repo/src/ntp/ntp_packet.cpp" "src/ntp/CMakeFiles/gorilla_ntp.dir/ntp_packet.cpp.o" "gcc" "src/ntp/CMakeFiles/gorilla_ntp.dir/ntp_packet.cpp.o.d"
  "/root/repo/src/ntp/ntpdc.cpp" "src/ntp/CMakeFiles/gorilla_ntp.dir/ntpdc.cpp.o" "gcc" "src/ntp/CMakeFiles/gorilla_ntp.dir/ntpdc.cpp.o.d"
  "/root/repo/src/ntp/server.cpp" "src/ntp/CMakeFiles/gorilla_ntp.dir/server.cpp.o" "gcc" "src/ntp/CMakeFiles/gorilla_ntp.dir/server.cpp.o.d"
  "/root/repo/src/ntp/sysinfo.cpp" "src/ntp/CMakeFiles/gorilla_ntp.dir/sysinfo.cpp.o" "gcc" "src/ntp/CMakeFiles/gorilla_ntp.dir/sysinfo.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/gorilla_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/gorilla_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
