# Empty compiler generated dependencies file for gorilla_ntp.
# This may be replaced when dependencies are built.
