file(REMOVE_RECURSE
  "CMakeFiles/gorilla_ntp.dir/client.cpp.o"
  "CMakeFiles/gorilla_ntp.dir/client.cpp.o.d"
  "CMakeFiles/gorilla_ntp.dir/mode6.cpp.o"
  "CMakeFiles/gorilla_ntp.dir/mode6.cpp.o.d"
  "CMakeFiles/gorilla_ntp.dir/mode7.cpp.o"
  "CMakeFiles/gorilla_ntp.dir/mode7.cpp.o.d"
  "CMakeFiles/gorilla_ntp.dir/monlist.cpp.o"
  "CMakeFiles/gorilla_ntp.dir/monlist.cpp.o.d"
  "CMakeFiles/gorilla_ntp.dir/ntp_packet.cpp.o"
  "CMakeFiles/gorilla_ntp.dir/ntp_packet.cpp.o.d"
  "CMakeFiles/gorilla_ntp.dir/ntpdc.cpp.o"
  "CMakeFiles/gorilla_ntp.dir/ntpdc.cpp.o.d"
  "CMakeFiles/gorilla_ntp.dir/server.cpp.o"
  "CMakeFiles/gorilla_ntp.dir/server.cpp.o.d"
  "CMakeFiles/gorilla_ntp.dir/sysinfo.cpp.o"
  "CMakeFiles/gorilla_ntp.dir/sysinfo.cpp.o.d"
  "libgorilla_ntp.a"
  "libgorilla_ntp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gorilla_ntp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
