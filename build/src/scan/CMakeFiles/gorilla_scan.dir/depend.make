# Empty dependencies file for gorilla_scan.
# This may be replaced when dependencies are built.
