file(REMOVE_RECURSE
  "CMakeFiles/gorilla_scan.dir/prober.cpp.o"
  "CMakeFiles/gorilla_scan.dir/prober.cpp.o.d"
  "libgorilla_scan.a"
  "libgorilla_scan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gorilla_scan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
