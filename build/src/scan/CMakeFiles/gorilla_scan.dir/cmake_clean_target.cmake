file(REMOVE_RECURSE
  "libgorilla_scan.a"
)
