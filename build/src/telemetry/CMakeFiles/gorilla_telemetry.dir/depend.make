# Empty dependencies file for gorilla_telemetry.
# This may be replaced when dependencies are built.
