
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/telemetry/billing.cpp" "src/telemetry/CMakeFiles/gorilla_telemetry.dir/billing.cpp.o" "gcc" "src/telemetry/CMakeFiles/gorilla_telemetry.dir/billing.cpp.o.d"
  "/root/repo/src/telemetry/darknet.cpp" "src/telemetry/CMakeFiles/gorilla_telemetry.dir/darknet.cpp.o" "gcc" "src/telemetry/CMakeFiles/gorilla_telemetry.dir/darknet.cpp.o.d"
  "/root/repo/src/telemetry/detector.cpp" "src/telemetry/CMakeFiles/gorilla_telemetry.dir/detector.cpp.o" "gcc" "src/telemetry/CMakeFiles/gorilla_telemetry.dir/detector.cpp.o.d"
  "/root/repo/src/telemetry/flow.cpp" "src/telemetry/CMakeFiles/gorilla_telemetry.dir/flow.cpp.o" "gcc" "src/telemetry/CMakeFiles/gorilla_telemetry.dir/flow.cpp.o.d"
  "/root/repo/src/telemetry/traffic.cpp" "src/telemetry/CMakeFiles/gorilla_telemetry.dir/traffic.cpp.o" "gcc" "src/telemetry/CMakeFiles/gorilla_telemetry.dir/traffic.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/gorilla_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/gorilla_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
