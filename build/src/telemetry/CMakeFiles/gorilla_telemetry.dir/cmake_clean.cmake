file(REMOVE_RECURSE
  "CMakeFiles/gorilla_telemetry.dir/billing.cpp.o"
  "CMakeFiles/gorilla_telemetry.dir/billing.cpp.o.d"
  "CMakeFiles/gorilla_telemetry.dir/darknet.cpp.o"
  "CMakeFiles/gorilla_telemetry.dir/darknet.cpp.o.d"
  "CMakeFiles/gorilla_telemetry.dir/detector.cpp.o"
  "CMakeFiles/gorilla_telemetry.dir/detector.cpp.o.d"
  "CMakeFiles/gorilla_telemetry.dir/flow.cpp.o"
  "CMakeFiles/gorilla_telemetry.dir/flow.cpp.o.d"
  "CMakeFiles/gorilla_telemetry.dir/traffic.cpp.o"
  "CMakeFiles/gorilla_telemetry.dir/traffic.cpp.o.d"
  "libgorilla_telemetry.a"
  "libgorilla_telemetry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gorilla_telemetry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
