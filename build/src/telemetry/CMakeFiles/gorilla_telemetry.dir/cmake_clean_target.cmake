file(REMOVE_RECURSE
  "libgorilla_telemetry.a"
)
