# Empty compiler generated dependencies file for gorilla_dns.
# This may be replaced when dependencies are built.
