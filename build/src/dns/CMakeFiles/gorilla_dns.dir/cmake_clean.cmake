file(REMOVE_RECURSE
  "CMakeFiles/gorilla_dns.dir/resolver.cpp.o"
  "CMakeFiles/gorilla_dns.dir/resolver.cpp.o.d"
  "libgorilla_dns.a"
  "libgorilla_dns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gorilla_dns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
