file(REMOVE_RECURSE
  "libgorilla_dns.a"
)
