file(REMOVE_RECURSE
  "CMakeFiles/scan_tests.dir/scan/probe_targets_test.cpp.o"
  "CMakeFiles/scan_tests.dir/scan/probe_targets_test.cpp.o.d"
  "CMakeFiles/scan_tests.dir/scan/prober_test.cpp.o"
  "CMakeFiles/scan_tests.dir/scan/prober_test.cpp.o.d"
  "scan_tests"
  "scan_tests.pdb"
  "scan_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scan_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
