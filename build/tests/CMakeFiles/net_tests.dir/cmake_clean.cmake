file(REMOVE_RECURSE
  "CMakeFiles/net_tests.dir/net/ethernet_test.cpp.o"
  "CMakeFiles/net_tests.dir/net/ethernet_test.cpp.o.d"
  "CMakeFiles/net_tests.dir/net/ipv4_test.cpp.o"
  "CMakeFiles/net_tests.dir/net/ipv4_test.cpp.o.d"
  "CMakeFiles/net_tests.dir/net/ipv6_test.cpp.o"
  "CMakeFiles/net_tests.dir/net/ipv6_test.cpp.o.d"
  "CMakeFiles/net_tests.dir/net/packet_test.cpp.o"
  "CMakeFiles/net_tests.dir/net/packet_test.cpp.o.d"
  "CMakeFiles/net_tests.dir/net/pbl_test.cpp.o"
  "CMakeFiles/net_tests.dir/net/pbl_test.cpp.o.d"
  "CMakeFiles/net_tests.dir/net/pcap_test.cpp.o"
  "CMakeFiles/net_tests.dir/net/pcap_test.cpp.o.d"
  "CMakeFiles/net_tests.dir/net/prefix_trie_test.cpp.o"
  "CMakeFiles/net_tests.dir/net/prefix_trie_test.cpp.o.d"
  "CMakeFiles/net_tests.dir/net/registry_test.cpp.o"
  "CMakeFiles/net_tests.dir/net/registry_test.cpp.o.d"
  "net_tests"
  "net_tests.pdb"
  "net_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
