# Empty dependencies file for ntp_tests.
# This may be replaced when dependencies are built.
