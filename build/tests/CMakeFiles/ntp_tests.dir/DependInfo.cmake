
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/ntp/client_test.cpp" "tests/CMakeFiles/ntp_tests.dir/ntp/client_test.cpp.o" "gcc" "tests/CMakeFiles/ntp_tests.dir/ntp/client_test.cpp.o.d"
  "/root/repo/tests/ntp/kod_test.cpp" "tests/CMakeFiles/ntp_tests.dir/ntp/kod_test.cpp.o" "gcc" "tests/CMakeFiles/ntp_tests.dir/ntp/kod_test.cpp.o.d"
  "/root/repo/tests/ntp/legacy_monlist_test.cpp" "tests/CMakeFiles/ntp_tests.dir/ntp/legacy_monlist_test.cpp.o" "gcc" "tests/CMakeFiles/ntp_tests.dir/ntp/legacy_monlist_test.cpp.o.d"
  "/root/repo/tests/ntp/mode6_test.cpp" "tests/CMakeFiles/ntp_tests.dir/ntp/mode6_test.cpp.o" "gcc" "tests/CMakeFiles/ntp_tests.dir/ntp/mode6_test.cpp.o.d"
  "/root/repo/tests/ntp/mode7_test.cpp" "tests/CMakeFiles/ntp_tests.dir/ntp/mode7_test.cpp.o" "gcc" "tests/CMakeFiles/ntp_tests.dir/ntp/mode7_test.cpp.o.d"
  "/root/repo/tests/ntp/monlist_model_test.cpp" "tests/CMakeFiles/ntp_tests.dir/ntp/monlist_model_test.cpp.o" "gcc" "tests/CMakeFiles/ntp_tests.dir/ntp/monlist_model_test.cpp.o.d"
  "/root/repo/tests/ntp/monlist_test.cpp" "tests/CMakeFiles/ntp_tests.dir/ntp/monlist_test.cpp.o" "gcc" "tests/CMakeFiles/ntp_tests.dir/ntp/monlist_test.cpp.o.d"
  "/root/repo/tests/ntp/ntp_packet_test.cpp" "tests/CMakeFiles/ntp_tests.dir/ntp/ntp_packet_test.cpp.o" "gcc" "tests/CMakeFiles/ntp_tests.dir/ntp/ntp_packet_test.cpp.o.d"
  "/root/repo/tests/ntp/ntpdc_test.cpp" "tests/CMakeFiles/ntp_tests.dir/ntp/ntpdc_test.cpp.o" "gcc" "tests/CMakeFiles/ntp_tests.dir/ntp/ntpdc_test.cpp.o.d"
  "/root/repo/tests/ntp/parser_fuzz_test.cpp" "tests/CMakeFiles/ntp_tests.dir/ntp/parser_fuzz_test.cpp.o" "gcc" "tests/CMakeFiles/ntp_tests.dir/ntp/parser_fuzz_test.cpp.o.d"
  "/root/repo/tests/ntp/peerlist_test.cpp" "tests/CMakeFiles/ntp_tests.dir/ntp/peerlist_test.cpp.o" "gcc" "tests/CMakeFiles/ntp_tests.dir/ntp/peerlist_test.cpp.o.d"
  "/root/repo/tests/ntp/server_test.cpp" "tests/CMakeFiles/ntp_tests.dir/ntp/server_test.cpp.o" "gcc" "tests/CMakeFiles/ntp_tests.dir/ntp/server_test.cpp.o.d"
  "/root/repo/tests/ntp/sysinfo_test.cpp" "tests/CMakeFiles/ntp_tests.dir/ntp/sysinfo_test.cpp.o" "gcc" "tests/CMakeFiles/ntp_tests.dir/ntp/sysinfo_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/gorilla_core.dir/DependInfo.cmake"
  "/root/repo/build/src/scan/CMakeFiles/gorilla_scan.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/gorilla_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/telemetry/CMakeFiles/gorilla_telemetry.dir/DependInfo.cmake"
  "/root/repo/build/src/dns/CMakeFiles/gorilla_dns.dir/DependInfo.cmake"
  "/root/repo/build/src/ntp/CMakeFiles/gorilla_ntp.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/gorilla_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/gorilla_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
