file(REMOVE_RECURSE
  "CMakeFiles/ntp_tests.dir/ntp/client_test.cpp.o"
  "CMakeFiles/ntp_tests.dir/ntp/client_test.cpp.o.d"
  "CMakeFiles/ntp_tests.dir/ntp/kod_test.cpp.o"
  "CMakeFiles/ntp_tests.dir/ntp/kod_test.cpp.o.d"
  "CMakeFiles/ntp_tests.dir/ntp/legacy_monlist_test.cpp.o"
  "CMakeFiles/ntp_tests.dir/ntp/legacy_monlist_test.cpp.o.d"
  "CMakeFiles/ntp_tests.dir/ntp/mode6_test.cpp.o"
  "CMakeFiles/ntp_tests.dir/ntp/mode6_test.cpp.o.d"
  "CMakeFiles/ntp_tests.dir/ntp/mode7_test.cpp.o"
  "CMakeFiles/ntp_tests.dir/ntp/mode7_test.cpp.o.d"
  "CMakeFiles/ntp_tests.dir/ntp/monlist_model_test.cpp.o"
  "CMakeFiles/ntp_tests.dir/ntp/monlist_model_test.cpp.o.d"
  "CMakeFiles/ntp_tests.dir/ntp/monlist_test.cpp.o"
  "CMakeFiles/ntp_tests.dir/ntp/monlist_test.cpp.o.d"
  "CMakeFiles/ntp_tests.dir/ntp/ntp_packet_test.cpp.o"
  "CMakeFiles/ntp_tests.dir/ntp/ntp_packet_test.cpp.o.d"
  "CMakeFiles/ntp_tests.dir/ntp/ntpdc_test.cpp.o"
  "CMakeFiles/ntp_tests.dir/ntp/ntpdc_test.cpp.o.d"
  "CMakeFiles/ntp_tests.dir/ntp/parser_fuzz_test.cpp.o"
  "CMakeFiles/ntp_tests.dir/ntp/parser_fuzz_test.cpp.o.d"
  "CMakeFiles/ntp_tests.dir/ntp/peerlist_test.cpp.o"
  "CMakeFiles/ntp_tests.dir/ntp/peerlist_test.cpp.o.d"
  "CMakeFiles/ntp_tests.dir/ntp/server_test.cpp.o"
  "CMakeFiles/ntp_tests.dir/ntp/server_test.cpp.o.d"
  "CMakeFiles/ntp_tests.dir/ntp/sysinfo_test.cpp.o"
  "CMakeFiles/ntp_tests.dir/ntp/sysinfo_test.cpp.o.d"
  "ntp_tests"
  "ntp_tests.pdb"
  "ntp_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ntp_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
