file(REMOVE_RECURSE
  "CMakeFiles/dns_tests.dir/dns/resolver_test.cpp.o"
  "CMakeFiles/dns_tests.dir/dns/resolver_test.cpp.o.d"
  "dns_tests"
  "dns_tests.pdb"
  "dns_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dns_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
