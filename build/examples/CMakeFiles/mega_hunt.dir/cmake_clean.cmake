file(REMOVE_RECURSE
  "CMakeFiles/mega_hunt.dir/mega_hunt.cpp.o"
  "CMakeFiles/mega_hunt.dir/mega_hunt.cpp.o.d"
  "mega_hunt"
  "mega_hunt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mega_hunt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
