# Empty compiler generated dependencies file for mega_hunt.
# This may be replaced when dependencies are built.
