file(REMOVE_RECURSE
  "CMakeFiles/regional_isp.dir/regional_isp.cpp.o"
  "CMakeFiles/regional_isp.dir/regional_isp.cpp.o.d"
  "regional_isp"
  "regional_isp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/regional_isp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
