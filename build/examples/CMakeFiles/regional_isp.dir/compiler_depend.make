# Empty compiler generated dependencies file for regional_isp.
# This may be replaced when dependencies are built.
