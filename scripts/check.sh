#!/usr/bin/env bash
# Pre-merge gate: everything a change must pass before it lands.
#
#   1. Release build with -Werror -Wconversion -Wshadow (GORILLA_STRICT),
#      full test suite.
#   2. gorilla_lint over src/ plus its self-test fixtures (the lint.* ctest
#      label, run from the release tree).
#   3. ASan+UBSan build, full test suite again under instrumentation.
#   4. Fault-injection suite (ctest label "fault") re-run under ASan+UBSan:
#      the crash-safety paths — torn writes, CRC-failed loads, shard
#      retry/quarantine, checkpoint+prefix replay — exercise exactly the
#      error-handling branches sanitizers are best at auditing.
#   5. TSan build of the engine/thread-pool tests; the sharded executor's
#      worker-thread discipline (DESIGN.md §3d) is vetted under
#      ThreadSanitizer even on hosts where thread speedup is impossible.
#   6. Memory gate: fig03 at --scale 40, failing when its peak RSS
#      regresses >10% against the latest fig03 peak_rss_kb recorded in
#      BENCH_engine.json (scripts/bench.sh writes it). Skipped with a note
#      when no baseline exists yet.
#   7. Replay-backend gate: record fig03 at --scale 4, replay the artifact
#      through the detector+pcap sinks with gorilla_replay, re-run the same
#      study live (--live) and diff the two detector reports byte-for-byte
#      — the multi-backend replay determinism contract (DESIGN.md §3h).
#   8. Compaction gate: the same fig03 study recorded as GORCOLv3 and as
#      GORCOLv2 must land the v3 artifact at <=60% of the v2 bytes, with
#      v3 replay stdout byte-identical to the live run at --jobs 1 and 3
#      (DESIGN.md §3i).
#
# Usage: scripts/check.sh [--fast]
#   --fast   skip the sanitizer passes (release build + tests + lint only)
set -euo pipefail

cd "$(dirname "$0")/.."

fast=0
if [[ "${1:-}" == "--fast" ]]; then
  fast=1
fi

jobs="$(nproc 2>/dev/null || echo 4)"

echo "== [1/6] Release build (strict warnings) + tests =="
cmake --preset release >/dev/null
cmake --build --preset release -j "$jobs"
ctest --preset release -j "$jobs"

echo "== [2/6] gorilla_lint (tree + self-test) =="
# Parallel analysis over the whole tree first — the summary line on stderr
# reports wall time, cache hits, and the job count; the DOT artifact and
# warm cache land in build/release for inspection. Then the ctest battery
# (self-test fixtures, layering mini-trees) on top.
./build/release/tools/gorilla_lint/gorilla_lint \
  --jobs "$jobs" \
  --cache build/release/gorilla_lint.cache \
  --dot build/release/include_graph.dot \
  src tools
ctest --test-dir build/release -L lint --output-on-failure

# The memory gate runs in --fast mode too: RSS regressions are exactly the
# kind of change a quick pre-merge pass should catch, and one fig03 run is
# cheap next to the sanitizer builds.
mem_gate() {
  echo "== [mem] fig03 --scale 40 peak-RSS gate =="
  local baseline_kb
  baseline_kb=$(python3 - <<'PY'
import json
best = 0
try:
    with open("BENCH_engine.json") as f:
        doc = json.load(f)
    for run in doc.get("runs", []):
        for e in run.get("entries", []):
            if e.get("bench") == "fig03_amplifier_counts" and e.get("peak_rss_kb"):
                best = e["peak_rss_kb"]  # latest run wins
except (FileNotFoundError, json.JSONDecodeError):
    pass
print(best)
PY
)
  if [[ "$baseline_kb" -eq 0 ]]; then
    echo "   no fig03 peak_rss_kb baseline in BENCH_engine.json — skipping"
    echo "   (run scripts/bench.sh once to record one)"
    return 0
  fi
  local rss_kb
  rss_kb=$(python3 - build/release/bench/fig03_amplifier_counts <<'PY'
import resource, subprocess, sys
rc = subprocess.run([sys.argv[1], "--scale", "40"],
                    stdout=subprocess.DEVNULL).returncode
if rc != 0:
    sys.exit(rc)
print(resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss)
PY
)
  local limit_kb=$((baseline_kb + baseline_kb / 10))
  echo "   peak RSS ${rss_kb} KB (baseline ${baseline_kb} KB, limit ${limit_kb} KB)"
  if [[ "$rss_kb" -gt "$limit_kb" ]]; then
    echo "check.sh: FAIL — fig03 peak RSS regressed >10% over the" \
         "BENCH_engine.json baseline" >&2
    exit 1
  fi
}

# Replay-backend gate (runs in --fast mode too — it is one small record +
# two replays): a recorded fig03 study replayed through the detector and
# pcap sinks must render the detector report byte-identically to the same
# sink riding the live bus, and the exported capture must be non-empty.
replay_gate() {
  echo "== [replay] fig03 --scale 4 record -> detector+pcap replay gate =="
  local work
  work="$(mktemp -d)"
  ./build/release/bench/fig03_amplifier_counts --quick --scale 4 \
    --record "$work/study.bin" >/dev/null
  ./build/release/tools/gorilla_replay/gorilla_replay \
    --artifact "$work/study.bin" \
    --sinks detector,pcap --out "$work/replayed" 2>"$work/replay.log"
  ./build/release/tools/gorilla_replay/gorilla_replay \
    --artifact "$work/study.bin" \
    --live --sinks detector --out "$work/live" 2>>"$work/replay.log"
  if ! cmp -s "$work/live/detector.txt" "$work/replayed/detector.txt"; then
    echo "check.sh: FAIL — replayed detector report differs from the live" \
         "bus (see $work)" >&2
    exit 1
  fi
  if [[ ! -s "$work/replayed/attacks.pcap" ]]; then
    echo "check.sh: FAIL — replay produced no pcap capture" >&2
    exit 1
  fi
  echo "   detector report byte-identical live vs replayed;" \
       "pcap $(wc -c <"$work/replayed/attacks.pcap") bytes"
  rm -rf "$work"
}

# Compaction gate (runs in --fast mode too): the same fig03 study recorded
# as GORCOLv3 (default) and as uncompressed GORCOLv2 must show the v3
# artifact at <=60% of the v2 bytes, and replaying the v3 artifact at
# --jobs 1 and --jobs 3 must reproduce the live stdout byte-for-byte —
# the format bump is pure compaction, never a semantic change
# (DESIGN.md §3i).
compaction_gate() {
  echo "== [compaction] fig03 --scale 4 GORCOLv3-vs-v2 size + replay gate =="
  local work
  work="$(mktemp -d)"
  ./build/release/bench/fig03_amplifier_counts --quick --scale 4 \
    --record "$work/v3.study" >"$work/live.txt"
  ./build/release/bench/fig03_amplifier_counts --quick --scale 4 \
    --artifact-version 2 --record "$work/v2.study" >/dev/null
  local v3_bytes v2_bytes limit_bytes
  v3_bytes=$(wc -c <"$work/v3.study")
  v2_bytes=$(wc -c <"$work/v2.study")
  limit_bytes=$((v2_bytes * 60 / 100))
  echo "   v3 ${v3_bytes} B vs v2 ${v2_bytes} B (limit ${limit_bytes} B)"
  if [[ "$v3_bytes" -gt "$limit_bytes" ]]; then
    echo "check.sh: FAIL — GORCOLv3 artifact exceeds 60% of the v2 size" >&2
    exit 1
  fi
  local j
  for j in 1 3; do
    ./build/release/bench/fig03_amplifier_counts --quick --scale 4 \
      --replay "$work/v3.study" --jobs "$j" >"$work/replay$j.txt"
    if ! cmp -s "$work/live.txt" "$work/replay$j.txt"; then
      echo "check.sh: FAIL — GORCOLv3 replay at --jobs $j differs from" \
           "the live stdout (see $work)" >&2
      exit 1
    fi
  done
  echo "   replay stdout byte-identical to live at --jobs 1 and 3"
  rm -rf "$work"
}

if [[ "$fast" -eq 1 ]]; then
  echo "== [3/6] skipped (--fast) =="
  echo "== [4/6] skipped (--fast) =="
  echo "== [5/6] skipped (--fast) =="
  mem_gate
  replay_gate
  compaction_gate
  echo "check.sh: OK (fast)"
  exit 0
fi

echo "== [3/6] ASan+UBSan build + tests =="
cmake --preset asan-ubsan >/dev/null
cmake --build --preset asan-ubsan -j "$jobs"
ctest --preset asan-ubsan -j "$jobs"

echo "== [4/6] fault-injection suite under ASan+UBSan =="
ctest --test-dir build/asan-ubsan -L fault --output-on-failure

echo "== [5/6] TSan build + engine/thread-pool tests =="
cmake --preset tsan >/dev/null
cmake --build --preset tsan -j "$jobs"
ctest --preset tsan -j "$jobs"

mem_gate
replay_gate
compaction_gate
echo "check.sh: OK"
