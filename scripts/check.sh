#!/usr/bin/env bash
# Pre-merge gate: everything a change must pass before it lands.
#
#   1. Release build with -Werror -Wconversion -Wshadow (GORILLA_STRICT),
#      full test suite.
#   2. gorilla_lint over src/ plus its self-test fixtures (the lint.* ctest
#      label, run from the release tree).
#   3. ASan+UBSan build, full test suite again under instrumentation.
#   4. Fault-injection suite (ctest label "fault") re-run under ASan+UBSan:
#      the crash-safety paths — torn writes, CRC-failed loads, shard
#      retry/quarantine, checkpoint+prefix replay — exercise exactly the
#      error-handling branches sanitizers are best at auditing.
#   5. TSan build of the engine/thread-pool tests; the sharded executor's
#      worker-thread discipline (DESIGN.md §3d) is vetted under
#      ThreadSanitizer even on hosts where thread speedup is impossible.
#
# Usage: scripts/check.sh [--fast]
#   --fast   skip the sanitizer passes (release build + tests + lint only)
set -euo pipefail

cd "$(dirname "$0")/.."

fast=0
if [[ "${1:-}" == "--fast" ]]; then
  fast=1
fi

jobs="$(nproc 2>/dev/null || echo 4)"

echo "== [1/5] Release build (strict warnings) + tests =="
cmake --preset release >/dev/null
cmake --build --preset release -j "$jobs"
ctest --preset release -j "$jobs"

echo "== [2/5] gorilla_lint (tree + self-test) =="
# Parallel analysis over the whole tree first — the summary line on stderr
# reports wall time, cache hits, and the job count; the DOT artifact and
# warm cache land in build/release for inspection. Then the ctest battery
# (self-test fixtures, layering mini-trees) on top.
./build/release/tools/gorilla_lint/gorilla_lint \
  --jobs "$jobs" \
  --cache build/release/gorilla_lint.cache \
  --dot build/release/include_graph.dot \
  src tools
ctest --test-dir build/release -L lint --output-on-failure

if [[ "$fast" -eq 1 ]]; then
  echo "== [3/5] skipped (--fast) =="
  echo "== [4/5] skipped (--fast) =="
  echo "== [5/5] skipped (--fast) =="
  echo "check.sh: OK (fast)"
  exit 0
fi

echo "== [3/5] ASan+UBSan build + tests =="
cmake --preset asan-ubsan >/dev/null
cmake --build --preset asan-ubsan -j "$jobs"
ctest --preset asan-ubsan -j "$jobs"

echo "== [4/5] fault-injection suite under ASan+UBSan =="
ctest --test-dir build/asan-ubsan -L fault --output-on-failure

echo "== [5/5] TSan build + engine/thread-pool tests =="
cmake --preset tsan >/dev/null
cmake --build --preset tsan -j "$jobs"
ctest --preset tsan -j "$jobs"

echo "check.sh: OK"
