#!/usr/bin/env bash
# Pre-merge gate: everything a change must pass before it lands.
#
#   1. Release build with -Werror -Wconversion -Wshadow (GORILLA_STRICT),
#      full test suite.
#   2. gorilla_lint over src/ plus its self-test fixtures (the lint.* ctest
#      label, run from the release tree).
#   3. ASan+UBSan build, full test suite again under instrumentation.
#
# Usage: scripts/check.sh [--fast]
#   --fast   skip the sanitizer pass (release build + tests + lint only)
set -euo pipefail

cd "$(dirname "$0")/.."

fast=0
if [[ "${1:-}" == "--fast" ]]; then
  fast=1
fi

jobs="$(nproc 2>/dev/null || echo 4)"

echo "== [1/3] Release build (strict warnings) + tests =="
cmake --preset release >/dev/null
cmake --build --preset release -j "$jobs"
ctest --preset release -j "$jobs"

echo "== [2/3] gorilla_lint (tree + self-test) =="
ctest --test-dir build/release -L lint --output-on-failure

if [[ "$fast" -eq 1 ]]; then
  echo "== [3/3] skipped (--fast) =="
  echo "check.sh: OK (fast)"
  exit 0
fi

echo "== [3/3] ASan+UBSan build + tests =="
cmake --preset asan-ubsan >/dev/null
cmake --build --preset asan-ubsan -j "$jobs"
ctest --preset asan-ubsan -j "$jobs"

echo "check.sh: OK"
