#!/usr/bin/env bash
# Engine perf trajectory: times representative full-pipeline benches under
# the sharded study engine and writes BENCH_engine.json at the repo root.
#
# For each bench (fig03, fig07, fig13, tab05) this measures, at default
# scale/seed:
#   - sequential wall time        (--jobs 1)
#   - parallel wall time          (--jobs $(nproc), override with JOBS=N)
#   - record wall time            (--jobs 1 --record study.bin)
#   - replay wall time            (--replay study.bin)
# and asserts stdout is byte-identical across all four runs — the engine's
# determinism contract (DESIGN.md §3d) makes every mode a pure speedup.
# The sequential run also records its peak RSS (peak_rss_kb), so the file
# carries the memory trajectory alongside the perf trajectory —
# scripts/check.sh gates fig03 RSS regressions against the latest run.
#
# The replay column is the simulate-once/analyze-many headline: every
# analysis after the first skips world build + simulation entirely.
#
# Usage: scripts/bench.sh [build-dir]   (default: build)
set -euo pipefail

cd "$(dirname "$0")/.."

build_dir="${1:-build}"
bench_dir="$build_dir/bench"
if [[ ! -d "$bench_dir" ]]; then
  echo "bench.sh: $bench_dir not found — configure and build first" >&2
  exit 2
fi

cores="$(nproc 2>/dev/null || echo 1)"
jobs="${JOBS:-$cores}"
# fig07 (StudyPipeline) and fig13 (RegionalRun) now push their attack days
# through the parallel day-shard path, so the jobs column tracks
# attack-phase speedup; fig03/tab05 cover the probe-dominated pipeline.
benches=(fig03_amplifier_counts fig07_attack_timeseries fig13_top_victims
         tab05_top_amplifiers)

work="$(mktemp -d)"
trap 'rm -rf "$work"' EXIT

# Wall time of a command in seconds (millisecond resolution), stdout to $1.
time_to() {
  local out="$1"
  shift
  local t0 t1
  t0=$(date +%s%N)
  "$@" >"$out" 2>>"$work/stderr.log"
  t1=$(date +%s%N)
  awk -v a="$t0" -v b="$t1" 'BEGIN { printf "%.3f", (b - a) / 1e9 }'
}

# Wall time (s) and peak RSS (KB) of a command, stdout to $1; prints
# "<seconds> <rss_kb>". Peak RSS comes from getrusage(RUSAGE_CHILDREN) in a
# fresh python process per run — the container image carries no
# /usr/bin/time, and ru_maxrss is the same kernel counter it would read.
measure_to() {
  local out="$1"
  shift
  python3 - "$out" "$@" <<'PY' 2>>"$work/stderr.log"
import resource, subprocess, sys, time
t0 = time.monotonic()
with open(sys.argv[1], "wb") as f:
    rc = subprocess.run(sys.argv[2:], stdout=f, stderr=sys.stderr).returncode
dt = time.monotonic() - t0
if rc != 0:
    sys.exit(rc)
print("%.3f %d" % (dt, resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss))
PY
}

entries=""
for bench in "${benches[@]}"; do
  bin="$bench_dir/$bench"
  if [[ ! -x "$bin" ]]; then
    echo "bench.sh: missing $bin" >&2
    exit 2
  fi
  echo "== $bench =="

  read -r seq_s seq_rss_kb <<<"$(measure_to "$work/$bench.jobs1.txt" "$bin" --jobs 1)"
  echo "   --jobs 1        ${seq_s}s  (peak RSS $((seq_rss_kb / 1024)) MB)"
  par_s=$(time_to "$work/$bench.jobsN.txt" "$bin" --jobs "$jobs")
  echo "   --jobs $jobs        ${par_s}s"
  rec_s=$(time_to "$work/$bench.record.txt" "$bin" --jobs 1 --record "$work/$bench.study")
  echo "   --record        ${rec_s}s"
  rep_s=$(time_to "$work/$bench.replay.txt" "$bin" --replay "$work/$bench.study")
  echo "   --replay        ${rep_s}s"

  for mode in jobsN record replay; do
    if ! cmp -s "$work/$bench.jobs1.txt" "$work/$bench.$mode.txt"; then
      echo "bench.sh: FAIL — $bench $mode output differs from --jobs 1" >&2
      exit 1
    fi
  done
  echo "   stdout byte-identical across jobs/record/replay"

  # Sub-millisecond denominators would print inf/nan and break the JSON;
  # report a 0.00 sentinel speedup instead.
  jobs_speedup=$(awk -v a="$seq_s" -v b="$par_s" \
    'BEGIN { if (b > 0) printf "%.2f", a / b; else printf "0.00" }')
  replay_speedup=$(awk -v a="$seq_s" -v b="$rep_s" \
    'BEGIN { if (b > 0) printf "%.2f", a / b; else printf "0.00" }')
  artifact_bytes=$(wc -c <"$work/$bench.study")

  [[ -n "$entries" ]] && entries+=","
  entries+="
    { \"bench\": \"$bench\",
      \"seq_s\": $seq_s, \"par_s\": $par_s, \"jobs\": $jobs,
      \"jobs_speedup\": $jobs_speedup,
      \"record_s\": $rec_s, \"replay_s\": $rep_s,
      \"replay_speedup\": $replay_speedup,
      \"artifact_bytes\": $artifact_bytes,
      \"peak_rss_kb\": $seq_rss_kb,
      \"identical_stdout\": true }"
done

# Lint timing: the v2 analyzer over src+tools, cold cache then warm cache
# (warm hits skip lexing and per-file rules; only the graph passes re-run).
# Rides in the same run object so analyzer throughput is tracked alongside
# engine throughput.
lint_bin="$build_dir/tools/gorilla_lint/gorilla_lint"
lint_json="null"
if [[ -x "$lint_bin" ]]; then
  echo "== gorilla_lint =="
  rm -f "$work/lint.cache"
  lint_cold_s=$(time_to "$work/lint.cold.txt" \
    "$lint_bin" --jobs "$jobs" --cache "$work/lint.cache" src tools)
  echo "   cold cache      ${lint_cold_s}s"
  lint_warm_s=$(time_to "$work/lint.warm.txt" \
    "$lint_bin" --jobs "$jobs" --cache "$work/lint.cache" src tools)
  echo "   warm cache      ${lint_warm_s}s"
  lint_files=$(grep -o 'in [0-9]* files' "$work/stderr.log" |
    tail -1 | grep -o '[0-9]*' || echo 0)
  lint_json="{ \"files\": ${lint_files:-0}, \"jobs\": $jobs,
      \"cold_s\": $lint_cold_s, \"warm_s\": $lint_warm_s }"
fi

# Multi-backend replay timing: the fig03 artifact recorded above replayed
# through gorilla_replay, detector-only and then full fan-out
# (detector+pcap+csv) — the per-sink analyze-many cost the replay layer
# adds on top of the raw replay column.
replay_bin="$build_dir/tools/gorilla_replay/gorilla_replay"
replay_json="null"
if [[ -x "$replay_bin" && -f "$work/fig03_amplifier_counts.study" ]]; then
  echo "== gorilla_replay =="
  artifact="$work/fig03_amplifier_counts.study"
  det_s=$(time_to "$work/greplay.det.txt" \
    "$replay_bin" --artifact "$artifact" --sinks detector \
    --out "$work/greplay_det")
  echo "   detector        ${det_s}s"
  fan_s=$(time_to "$work/greplay.fan.txt" \
    "$replay_bin" --artifact "$artifact" --sinks detector,pcap,csv \
    --jobs "$jobs" --out "$work/greplay_fan")
  echo "   detector,pcap,csv (--jobs $jobs)  ${fan_s}s"
  if ! cmp -s "$work/greplay_det/detector.txt" \
              "$work/greplay_fan/detector.txt"; then
    echo "bench.sh: FAIL — gorilla_replay detector output differs across" \
         "sink fan-outs" >&2
    exit 1
  fi
  pcap_bytes=$(wc -c <"$work/greplay_fan/attacks.pcap")
  replay_json="{ \"artifact\": \"fig03_amplifier_counts\", \"jobs\": $jobs,
      \"detector_s\": $det_s, \"fanout_s\": $fan_s,
      \"pcap_bytes\": $pcap_bytes }"
fi

# GORCOLv3 compaction: the fig03 artifact recorded in the bench loop above
# is v3 (the default); record the same study as uncompressed GORCOLv2 and
# report both sizes plus the v3 replay wall time, so the compaction shows
# up in the perf trajectory next to the replay column it accelerates.
gorcolv3_json="null"
fig03_bin="$bench_dir/fig03_amplifier_counts"
if [[ -x "$fig03_bin" && -f "$work/fig03_amplifier_counts.study" ]]; then
  echo "== gorcolv3 =="
  v3_artifact="$work/fig03_amplifier_counts.study"
  time_to "$work/fig03.v2rec.txt" "$fig03_bin" --jobs 1 \
    --artifact-version 2 --record "$work/fig03.v2.study" >/dev/null
  v3_bytes=$(wc -c <"$v3_artifact")
  v2_bytes=$(wc -c <"$work/fig03.v2.study")
  v3_replay_s=$(time_to "$work/fig03.v3rep.txt" "$fig03_bin" \
    --replay "$v3_artifact")
  if ! cmp -s "$work/fig03.v2rec.txt" "$work/fig03.v3rep.txt"; then
    echo "bench.sh: FAIL — fig03 v3 replay output differs from the v2" \
         "record run" >&2
    exit 1
  fi
  bytes_ratio=$(awk -v a="$v3_bytes" -v b="$v2_bytes" \
    'BEGIN { if (b > 0) printf "%.3f", a / b; else printf "0.000" }')
  echo "   v3 $v3_bytes B vs v2 $v2_bytes B (ratio $bytes_ratio);" \
       "v3 replay ${v3_replay_s}s"
  gorcolv3_json="{ \"artifact\": \"fig03_amplifier_counts\",
      \"artifact_bytes\": $v3_bytes, \"v2_artifact_bytes\": $v2_bytes,
      \"bytes_ratio\": $bytes_ratio, \"replay_s\": $v3_replay_s }"
fi

# One labeled run per invocation (BENCH_LABEL=... names it); previous runs
# are preserved so the file carries the perf trajectory across changes —
# e.g. the GORCOLv2 CRC/atomic-write run is directly comparable to the
# original engine run, same benches, same modes.
label="${BENCH_LABEL:-unlabeled}"
cat >"$work/run.json" <<EOF
{ "label": "$label",
  "host_cores": $cores,
  "jobs": $jobs,
  "lint": $lint_json,
  "gorilla_replay": $replay_json,
  "gorcolv3": $gorcolv3_json,
  "entries": [$entries
  ] }
EOF

python3 - "$work/run.json" <<'PYEOF'
import json, sys

with open(sys.argv[1]) as f:
    run = json.load(f)

note = ("seq_s = full simulate+analyze at --jobs 1; par_s = same at "
        "--jobs N, with attack+scan days running as parallel day shards "
        "(fig07/fig13 are attack-dominated, so their jobs column is the "
        "attack-phase speedup; thread speedup requires >1 core — on a "
        "1-core host par_s ~= seq_s and the honest speedup is the replay "
        "column); replay_s = analyze-only from a recorded event stream, "
        "the simulate-once/analyze-many path every per-figure bench can "
        "use. One run object per scripts/bench.sh invocation, oldest "
        "first.")
doc = {"name": "sharded-study-engine", "generated_by": "scripts/bench.sh",
       "note": note, "runs": []}
try:
    with open("BENCH_engine.json") as f:
        old = json.load(f)
    if "runs" in old:
        doc["runs"] = old["runs"]
    elif "entries" in old:
        # Legacy single-run layout: keep it as the first labeled run.
        doc["runs"] = [{"label": "sharded-engine-gorcolv1",
                        "host_cores": old.get("host_cores"),
                        "jobs": old.get("jobs"),
                        "entries": old["entries"]}]
except (FileNotFoundError, json.JSONDecodeError):
    pass

doc["runs"].append(run)
with open("BENCH_engine.json", "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")
PYEOF
echo "wrote BENCH_engine.json (run '$label' appended)"
