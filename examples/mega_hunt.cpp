// Mega-amplifier hunt: find the boxes that answer one 48-byte probe with
// megabytes (§3.4), keep packet-level evidence, and hand the operator a
// forensic bundle — an ntpdc-format table dump plus a pcap any tcpdump or
// Wireshark can open.
//
// Usage: ./build/examples/mega_hunt [--scale N] [--pcap FILE]
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <vector>

#include "net/pcap.h"
#include "ntp/ntpdc.h"
#include "scan/prober.h"
#include "sim/attack.h"
#include "util/format.h"

using namespace gorilla;

int main(int argc, char** argv) {
  sim::WorldConfig wcfg;
  wcfg.scale = 200;
  std::string pcap_path = "/tmp/gorilla_mega_hunt.pcap";
  for (int i = 1; i + 1 < argc; ++i) {
    if (!std::strcmp(argv[i], "--scale")) {
      wcfg.scale = static_cast<std::uint32_t>(std::atoi(argv[i + 1]));
    }
    if (!std::strcmp(argv[i], "--pcap")) pcap_path = argv[i + 1];
  }
  sim::World world(wcfg);

  // Some attack history so tables are interesting.
  sim::AttackEngine attacks(world, sim::AttackEngineConfig{}, {});
  for (int day = 95; day < 99; ++day) attacks.run_day(day);

  // Sweep the amplifier pool once and rank by response bytes.
  scan::Prober prober(world, net::Ipv4Address(198, 51, 100, 7));
  struct Hit {
    std::uint32_t server = 0;
    net::Ipv4Address address;
    std::uint64_t wire_bytes = 0;
    std::uint64_t packets = 0;
  };
  std::vector<Hit> hits;
  prober.run_monlist_sample(4, [&](const scan::AmplifierObservation& obs) {
    hits.push_back(Hit{obs.server_index, obs.address,
                       obs.response_wire_bytes, obs.response_packets});
  });
  std::sort(hits.begin(), hits.end(),
            [](const Hit& a, const Hit& b) {
              return a.wire_bytes > b.wire_bytes;
            });

  std::printf("swept %zu responding amplifiers; top repliers:\n\n",
              hits.size());
  util::TextTable table({"amplifier", "reply packets", "reply bytes",
                         "on-wire BAF"});
  for (std::size_t i = 0; i < hits.size() && i < 8; ++i) {
    table.add_row({net::to_string(hits[i].address),
                   std::to_string(hits[i].packets),
                   util::bytes_str(static_cast<double>(hits[i].wire_bytes)),
                   util::fixed(static_cast<double>(hits[i].wire_bytes) / 84.0,
                               0)});
  }
  std::printf("%s\n", table.to_string().c_str());

  if (hits.empty()) return 0;
  const auto& worst = hits.front();
  std::printf("worst offender %s replied with %s to one 48-byte probe —\n"
              "%s mega territory. Collecting evidence...\n\n",
              net::to_string(worst.address).c_str(),
              util::bytes_str(static_cast<double>(worst.wire_bytes)).c_str(),
              worst.wire_bytes > 100000 ? "§3.4" : "not quite");

  // Re-probe the worst offender, capturing packets to a pcap.
  auto* server = world.detailed(worst.server);
  net::UdpPacket probe;
  probe.src = net::Ipv4Address(198, 51, 100, 7);
  probe.dst = worst.address;
  probe.src_port = 57915;
  probe.dst_port = net::kNtpPort;
  probe.timestamp = scan::Prober::sample_time(4) + 3600;
  probe.payload = ntp::serialize(ntp::make_monlist_request());

  std::ofstream pcap_file(pcap_path, std::ios::binary);
  net::PcapWriter pcap(pcap_file);
  pcap.write(probe);
  const auto response = server->handle(probe, probe.timestamp);
  for (const auto& pkt : response.packets) {
    pcap.write(pkt);
  }
  // The writer's ok() is sticky; a full disk or unwritable path must fail
  // the process, not silently drop the evidence file.
  pcap_file.flush();
  if (!pcap.ok() || !pcap_file.good()) {
    std::fprintf(stderr, "FAILED to write evidence pcap: %s\n",
                 pcap_path.c_str());
    return 1;
  }
  std::printf("evidence pcap: %s (%llu packets%s)\n", pcap_path.c_str(),
              static_cast<unsigned long long>(pcap.packets_written()),
              response.truncated ? ", reply truncated to cap" : "");

  // And the human-readable table, exactly as ntpdc would print it.
  std::vector<ntp::Mode7Packet> parsed;
  for (const auto& pkt : response.packets) {
    if (auto p = ntp::parse_mode7_packet(pkt.payload)) {
      parsed.push_back(std::move(*p));
    }
  }
  if (const auto tbl = ntp::reassemble_monlist(parsed)) {
    std::vector<ntp::MonitorEntry> head(
        tbl->begin(), tbl->begin() + std::min<std::size_t>(10, tbl->size()));
    std::printf("\nntpdc -c monlist %s   (first %zu of %zu entries)\n%s",
                net::to_string(worst.address).c_str(), head.size(),
                tbl->size(), ntp::render_monlist(head).c_str());
  }
  return 0;
}
