// Regional ISP incident response: the §7 workflow from an operator's seat.
//
// You run a regional ISP (the Merit analogue). NTP reflection attacks are
// abusing amplifiers inside your network. This example:
//   1. collects border flow records through the attack window,
//   2. identifies the abused local amplifiers and their victims
//      (footnote-3 thresholds),
//   3. fingerprints scanners vs attack bots by TTL,
//   4. estimates the 95th-percentile transit-billing impact, and
//   5. "files trouble tickets": remediates the amplifiers and shows the
//      egress collapse.
//
// Usage: ./build/examples/regional_isp [--scale N]
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "core/local_view.h"
#include "sim/attack.h"
#include "sim/scanner.h"
#include "telemetry/billing.h"
#include "util/format.h"

using namespace gorilla;

int main(int argc, char** argv) {
  sim::WorldConfig wcfg;
  wcfg.scale = 200;
  for (int i = 1; i + 1 < argc; ++i) {
    if (!std::strcmp(argv[i], "--scale")) {
      wcfg.scale = static_cast<std::uint32_t>(std::atoi(argv[i + 1]));
    }
  }
  sim::World world(wcfg);
  const auto& named = world.registry().named();
  telemetry::FlowCollector border("Merit", {named.merit_space});

  sim::AttackSinks sinks;
  sinks.vantages = {&border};
  sim::AttackEngine attacks(world, sim::AttackEngineConfig{}, sinks);
  sim::ScanTraffic scans(world, sim::ScanTrafficConfig{});

  // 1. Live through Jan 20 - Feb 10.
  for (int day = 80; day < 101; ++day) {
    attacks.run_day(day);
    scans.run_day(day, nullptr, {&border});
  }

  // 2. Forensics.
  core::LocalForensics view(border, world.registry());
  const auto amps = view.amplifiers();
  std::printf("abused amplifiers inside our network: %zu "
              "(the paper found 50 at Merit)\n",
              amps.size());
  util::TextTable table({"amplifier", "BAF", "victims", "GB sent"});
  for (std::size_t i = 0; i < amps.size() && i < 5; ++i) {
    table.add_row({net::to_string(amps[i].address),
                   util::fixed(amps[i].baf, 0),
                   std::to_string(amps[i].unique_victims),
                   util::fixed(static_cast<double>(amps[i].bytes_sent) / 1e9,
                               1)});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("victims attacked via our amplifiers: %llu\n\n",
              static_cast<unsigned long long>(view.unique_victim_count()));

  // 3. Who is knocking? TTL fingerprints.
  const auto ttl = view.ttl_profile();
  if (ttl.scanner_mode_ttl && ttl.attack_mode_ttl) {
    std::printf("TTL fingerprints: scanners mode %d (Linux), spoofed "
                "triggers mode %d (Windows bots)\n\n",
                static_cast<int>(*ttl.scanner_mode_ttl),
                static_cast<int>(*ttl.attack_mode_ttl));
  }

  // 4. Billing impact (95th percentile transit model, §7.1).
  const util::SimTime start = 80 * util::kSecondsPerDay;
  const util::SimTime end = 101 * util::kSecondsPerDay;
  auto base = border.volume_series(start, end, 300,
                                   [](const telemetry::FlowRecord&) {
                                     return false;
                                   });
  util::Rng diurnal(7);
  for (std::size_t b = 0; b < base.bytes.size(); ++b) {
    const double hour = static_cast<double>((b * 300 / 3600) % 24);
    base.bytes[b] = 20e9 / 8.0 * 300 *
                    (0.8 + 0.3 * std::sin((hour - 15.0) / 24.0 * 6.283)) *
                    diurnal.uniform_real(0.97, 1.03);
  }
  const auto ntp_overlay = border.volume_series(
      start, end, 300, [](const telemetry::FlowRecord& f) {
        return f.src_port == net::kNtpPort || f.dst_port == net::kNtpPort;
      });
  std::printf("95th-percentile billing increase from the attack overlay: "
              "%.2f%% (paper: >2%% at Merit)\n\n",
              telemetry::billing_increase(base, ntp_overlay) * 100.0);

  // 5. Remediate: disable monlist on every abused amplifier, then watch a
  // comparison week.
  for (const auto ai : world.merit_amplifiers()) {
    if (auto* server = world.detailed(ai)) server->set_monlist_enabled(false);
  }
  for (const auto& t : world.servers()) (void)t;  // (traits untouched: the
  // attack engine consults fix weeks, so emulate the ticket by advancing
  // past Merit's fix window.)
  telemetry::FlowCollector after("Merit-after", {named.merit_space});
  sim::AttackSinks after_sinks;
  after_sinks.vantages = {&after};
  sim::AttackEngine late_attacks(world, sim::AttackEngineConfig{},
                                 after_sinks);
  for (int day = 145; day < 152; ++day) late_attacks.run_day(day);
  const double before_egress = static_cast<double>(
      border.total_bytes(telemetry::is_ntp_source));
  const double after_egress = static_cast<double>(
      after.total_bytes(telemetry::is_ntp_source));
  std::printf("NTP egress, 3 attack weeks before tickets: %s\n",
              util::bytes_str(before_egress).c_str());
  std::printf("NTP egress, 1 week after remediation:      %s\n",
              util::bytes_str(after_egress).c_str());
  std::printf("remediation collapse: %s\n",
              after_egress < before_egress / 10
                  ? "yes — patching works (§6)"
                  : "partial (stragglers remain, as at FRGP)");
  return 0;
}
