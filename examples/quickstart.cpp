// Quickstart: the core loop of the library in ~80 lines.
//
//   1. Stand up one simulated ntpd with an open monitor list.
//   2. Let a few clients (and one spoofing attacker) talk to it.
//   3. Probe it exactly as the OpenNTPProject did — one MON_GETLIST_1
//      packet — and reassemble the reply.
//   4. Classify every table entry with the paper's §4.2 filter and compute
//      the amplifier's on-wire bandwidth amplification factor.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "core/amplifiers.h"
#include "core/monlist_analysis.h"
#include "ntp/server.h"
#include "util/format.h"

using namespace gorilla;

int main() {
  // 1. One ntpd at 10.1.2.3 with monlist enabled (the vulnerable default
  //    of pre-4.2.7 ntpd).
  ntp::NtpServerConfig config;
  config.address = net::Ipv4Address(10, 1, 2, 3);
  config.sysvars.system = "Linux/2.6.32";
  config.sysvars.version = "ntpd 4.2.4p8@1.1612 Sat Feb 20 2010";
  config.sysvars.stratum = 3;
  ntp::NtpServer server(config);

  const util::SimTime now = 3 * util::kSecondsPerDay;

  // 2a. Two ordinary clients sync time (mode 3) over a few hours.
  server.monitor().observe_many(net::Ipv4Address(192, 0, 2, 10), 123, 3, 4,
                                /*packets=*/20, now - 5 * 3600, now - 120);
  server.monitor().observe_many(net::Ipv4Address(192, 0, 2, 77), 40123, 3, 4,
                                12, now - 4 * 3600, now - 900);

  // 2b. An attacker floods the server with spoofed MON_GETLIST_1 requests
  //     whose source is the victim: 200 packets/s for five minutes.
  const net::Ipv4Address victim(203, 0, 113, 55);
  server.monitor().observe_many(victim, /*port=*/80, /*mode=*/7, 2,
                                200 * 300, now - 360, now - 60);

  // 3. The weekly ONP-style probe: one 48-byte packet.
  net::UdpPacket probe;
  probe.src = net::Ipv4Address(198, 51, 100, 7);
  probe.dst = config.address;
  probe.src_port = 57915;
  probe.dst_port = net::kNtpPort;
  probe.timestamp = now;
  probe.payload = ntp::serialize(ntp::make_monlist_request());

  const auto response = server.handle(probe, now);
  std::printf("probe: %zu bytes on the wire -> reply: %llu packets, %s\n\n",
              static_cast<std::size_t>(probe.on_wire_bytes()),
              static_cast<unsigned long long>(response.total_packets),
              util::bytes_str(static_cast<double>(
                  response.total_on_wire_bytes)).c_str());

  std::vector<ntp::Mode7Packet> parsed;
  for (const auto& pkt : response.packets) {
    parsed.push_back(*ntp::parse_mode7_packet(pkt.payload));
  }
  const auto table = ntp::reassemble_monlist(parsed);

  // 4. Read the table the way §4 does.
  util::TextTable out({"client", "port", "count", "mode", "interarrival",
                       "last seen", "classified as"});
  for (const auto& e : *table) {
    const char* label = "";
    switch (core::classify_client(e)) {
      case core::ClientClass::kNonVictim: label = "normal client"; break;
      case core::ClientClass::kScannerOrLowVolume: label = "scanner"; break;
      case core::ClientClass::kVictim: label = "DDoS VICTIM"; break;
    }
    out.add_row({net::to_string(e.address), std::to_string(e.port),
                 std::to_string(e.count),
                 std::to_string(static_cast<int>(e.mode)),
                 std::to_string(e.avg_interval),
                 std::to_string(e.last_seen), label});
  }
  std::printf("%s\n", out.to_string().c_str());

  const double baf = static_cast<double>(response.total_on_wire_bytes) /
                     core::kBafDenominatorBytes;
  std::printf("on-wire BAF of this amplifier: %.1fx (84-byte query model)\n",
              baf);

  // The derived attack record for the victim entry.
  for (const auto& e : *table) {
    if (const auto attack = core::derive_attack(e, now, config.address)) {
      std::printf(
          "derived attack: victim %s port %u — %llu spoofed packets, "
          "~%llds, ended %llds before the probe\n",
          net::to_string(attack->victim).c_str(), attack->victim_port,
          static_cast<unsigned long long>(attack->packets),
          static_cast<long long>(attack->duration),
          static_cast<long long>(now - attack->end_time));
    }
  }
  return 0;
}
