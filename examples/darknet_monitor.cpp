// Darknet early-warning monitor: attach a telescope to unused address
// space and watch the NTP scanning wave arrive *before* the attack wave —
// the paper's §5 operational lesson, as a monitoring tool a network
// operator could actually run.
//
// Usage: ./build/examples/darknet_monitor [--scale N]
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "sim/attack.h"
#include "sim/scanner.h"
#include "sim/world.h"
#include "telemetry/darknet.h"
#include "telemetry/flow.h"
#include "util/format.h"

using namespace gorilla;

int main(int argc, char** argv) {
  sim::WorldConfig wcfg;
  wcfg.scale = 200;
  for (int i = 1; i + 1 < argc; ++i) {
    if (!std::strcmp(argv[i], "--scale")) {
      wcfg.scale = static_cast<std::uint32_t>(std::atoi(argv[i + 1]));
    }
  }
  sim::World world(wcfg);

  telemetry::DarknetConfig dcfg;
  dcfg.telescope = world.registry().named().darknet;
  telemetry::DarknetTelescope telescope(dcfg);
  std::printf("telescope: %s (~%.0f effective dark /24s)\n\n",
              net::to_string(dcfg.telescope).c_str(),
              telescope.effective_dark_slash24s());

  telemetry::FlowCollector merit(
      "Merit", {world.registry().named().merit_space});
  sim::AttackSinks sinks;
  sinks.vantages = {&merit};
  sim::AttackEngine attacks(world, sim::AttackEngineConfig{}, sinks);
  sim::ScanTraffic scans(world, sim::ScanTrafficConfig{});

  // A simple online alarm: alert when the day's unique-scanner count
  // exceeds 4x the trailing 14-day median.
  std::vector<double> history;
  int scan_alarm_day = -1, attack_alarm_day = -1;
  double egress_baseline = 0.0;

  for (int day = 20; day < 110; ++day) {
    attacks.run_day(day);
    scans.run_day(day, &telescope, {&merit});

    const auto per_day = telescope.unique_scanners_per_day();
    const auto it = per_day.find(day);
    const double scanners =
        it == per_day.end() ? 0.0 : static_cast<double>(it->second);
    if (history.size() >= 7 && scan_alarm_day < 0) {
      std::vector<double> window(history.end() - 7, history.end());
      std::sort(window.begin(), window.end());
      const double median = window[3];
      if (scanners > 4 * std::max(1.0, median)) scan_alarm_day = day;
    }
    history.push_back(scanners);

    const auto egress = merit.volume_series(
        static_cast<util::SimTime>(day) * util::kSecondsPerDay,
        static_cast<util::SimTime>(day + 1) * util::kSecondsPerDay,
        util::kSecondsPerDay, telemetry::is_ntp_source);
    const double today = egress.bytes.empty() ? 0.0 : egress.bytes[0];
    if (day < 42) egress_baseline = std::max(egress_baseline, today);
    // Absolute floor keeps a single early flow from tripping the alarm on
    // an empty baseline.
    if (attack_alarm_day < 0 && day >= 42 &&
        today > std::max(100e6, 10 * egress_baseline)) {
      attack_alarm_day = day;
    }
  }

  auto day_str = [](int day) {
    return util::to_string(util::date_from_sim_time(
        static_cast<util::SimTime>(day) * util::kSecondsPerDay));
  };
  if (scan_alarm_day >= 0) {
    std::printf("SCAN ALARM:   %s — unique NTP scanners spiked in the "
                "darknet\n",
                day_str(scan_alarm_day).c_str());
  }
  if (attack_alarm_day >= 0) {
    std::printf("ATTACK ALARM: %s — NTP egress surged at the Merit "
                "vantage\n",
                day_str(attack_alarm_day).c_str());
  }
  if (scan_alarm_day >= 0 && attack_alarm_day >= 0) {
    std::printf("\nlead time: %d days — darknet monitoring flagged the "
                "threat before the\nattack traffic arrived (the paper saw "
                "roughly a one-week lead, §5.1)\n",
                attack_alarm_day - scan_alarm_day);
  }

  std::printf("\nmonthly darknet volume per dark /24:\n");
  util::TextTable table({"month", "pkts//24", "benign frac"});
  for (const auto& m : telescope.monthly_volumes()) {
    char label[16];
    std::snprintf(label, sizeof label, "%04d-%02d", m.year, m.month);
    table.add_row({label, util::fixed(m.total(), 0),
                   util::fixed(m.benign_fraction(), 2)});
  }
  std::printf("%s", table.to_string().c_str());
  return 0;
}
