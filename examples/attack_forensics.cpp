// Attack forensics: run a small Internet through one week of the February
// 2014 attack wave, probe the amplifier pool, and reconstruct the victim
// population purely from monlist tables — the §4 "victimology" workflow
// as a downstream user would run it.
//
// Usage: ./build/examples/attack_forensics [--scale N] [--seed N]
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "core/amplifiers.h"
#include "core/victims.h"
#include "scan/prober.h"
#include "sim/attack.h"
#include "util/format.h"

using namespace gorilla;

int main(int argc, char** argv) {
  sim::WorldConfig wcfg;
  wcfg.scale = 200;
  for (int i = 1; i + 1 < argc; ++i) {
    if (!std::strcmp(argv[i], "--scale")) {
      wcfg.scale = static_cast<std::uint32_t>(std::atoi(argv[i + 1]));
    }
    if (!std::strcmp(argv[i], "--seed")) {
      wcfg.seed = std::strtoull(argv[i + 1], nullptr, 10);
    }
  }
  std::printf("building a 1:%u-scale Internet...\n", wcfg.scale);
  sim::World world(wcfg);
  std::printf("  %zu NTP servers, %zu ever-vulnerable amplifiers\n\n",
              world.servers().size(), world.amplifier_indices().size());

  // One week of peak-season attacks (Feb 5 - Feb 12, days 96..103).
  sim::AttackEngineConfig acfg;
  acfg.seed = wcfg.seed ^ 0xa77acdULL;
  sim::AttackEngine attacks(world, acfg, {});
  for (int day = 96; day <= 103; ++day) attacks.run_day(day);
  std::printf("attack engine ground truth: %llu attacks, %llu unique "
              "victims, %s sent\n\n",
              static_cast<unsigned long long>(attacks.totals().ntp_attacks),
              static_cast<unsigned long long>(attacks.unique_victims()),
              util::bytes_str(static_cast<double>(
                  attacks.totals().response_bytes)).c_str());

  // Probe the pool (sample week 5 = 2014-02-14) and rebuild victimology
  // from the tables alone.
  core::VictimAnalysis victims(world.registry(), world.pbl());
  core::AmplifierCensus census(world.registry(), world.pbl());
  scan::Prober prober(world, net::Ipv4Address(198, 51, 100, 7));
  const int week = 5;
  census.begin_sample(week, util::onp_sample_dates()[week]);
  victims.begin_sample(week, util::onp_sample_dates()[week]);
  const auto summary = prober.run_monlist_sample(
      week, [&](const scan::AmplifierObservation& obs) {
        census.add(obs);
        victims.add(obs);
      });
  census.end_sample();
  victims.end_sample();

  std::printf("probe pass: %llu probes, %llu amplifiers answered\n",
              static_cast<unsigned long long>(summary.probes_sent),
              static_cast<unsigned long long>(summary.responders));
  const auto& row = victims.rows().front();
  std::printf("victims recovered from tables: %llu IPs across %llu ASes "
              "(%.0f%% end hosts)\n",
              static_cast<unsigned long long>(row.ips),
              static_cast<unsigned long long>(row.asns), row.end_host_pct);
  std::printf("recovered / ground truth victims: %.2f (tables see a ~44 h "
              "window, so <1 is expected)\n\n",
              static_cast<double>(row.ips) /
                  static_cast<double>(attacks.unique_victims()));

  util::TextTable ports({"rank", "port", "fraction"});
  const auto top = victims.top_ports(8);
  for (std::size_t i = 0; i < top.size(); ++i) {
    ports.add_row({std::to_string(i + 1), std::to_string(top[i].first),
                   util::fixed(top[i].second, 3)});
  }
  std::printf("attacked ports (expect 80 and 123 on top, then game ports):\n%s\n",
              ports.to_string().c_str());

  const auto top_ases = victims.top_victim_ases(5);
  std::printf("top victim ASes (the OVH analogue should lead):\n");
  for (const auto& [asn, packets] : top_ases) {
    std::printf("  AS%-5u %-20s %s packets\n", asn,
                world.registry().as_info(asn).name.c_str(),
                util::si_count(static_cast<double>(packets)).c_str());
  }
  return 0;
}
