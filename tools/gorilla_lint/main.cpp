// gorilla_lint — self-hosted static checks for the gorilla tree.
//
// Token/regex-level (no libclang): the rules are deliberately shallow and
// the conventions they enforce are deliberately mechanical, so a few
// hundred lines of plain C++ can hold the whole tree to them. Registered
// under ctest (label "lint"); see DESIGN.md, "Static analysis &
// determinism rules".
//
// Rules:
//   raw-decode      byte<->integer conversion (memcpy, reinterpret_cast,
//                   shift-combine on a subscript) outside util/bytes.{h,cpp}
//   wall-clock      nondeterminism sources (system_clock, std::rand,
//                   random_device, time(nullptr), ...) anywhere in src/
//   unordered-iter  range-for over a std::unordered_{map,set} variable
//                   outside util/ (use util::sorted_* or carry a waiver)
//   float-eq        ==/!= against a floating-point literal
//   parse-optional  a parse_* function whose return type is not optional
//   worker-capture  blanket [&]-capture on the worker lambda handed to
//                   ShardedExecutor::run_ordered/parallel_for or
//                   ThreadPool::submit (captures must be spelled out so the
//                   reviewer can check the determinism-merge contract at
//                   the call site)
//   raw-ofstream    std::ofstream outside the sanctioned artifact-write
//                   path (util/columnar.cpp save_file + util/bytes.cpp
//                   write_all) — raw streams skip the atomic tmp+rename,
//                   fsync, and fault-injection seam
//
// A finding on a line containing "NOLINT(<rule>)" is suppressed; waivers
// are expected to carry a justifying comment.
//
// Usage:
//   gorilla_lint <dir-or-file>...      lint the tree (exit 1 on findings)
//   gorilla_lint --self-test <dir>     each <dir>/bad_<rule>.cpp must trip
//                                      exactly rule <rule>

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <regex>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace {

namespace fs = std::filesystem;

struct SourceFile {
  fs::path path;
  std::string raw;        // as on disk
  std::string scrubbed;   // comments and string/char literals blanked
  std::vector<std::size_t> line_starts;  // offset of each line in raw
  std::map<std::size_t, std::set<std::string>> waivers;  // line -> rules
};

struct Finding {
  fs::path path;
  std::size_t line = 0;
  std::string rule;
  std::string message;
};

std::size_t line_of(const SourceFile& f, std::size_t offset) {
  const auto it = std::upper_bound(f.line_starts.begin(), f.line_starts.end(),
                                   offset);
  return static_cast<std::size_t>(it - f.line_starts.begin());
}

bool waived(const SourceFile& f, std::size_t line, const std::string& rule) {
  const auto it = f.waivers.find(line);
  return it != f.waivers.end() && it->second.count(rule) != 0;
}

/// Blank comments and string/char literals with spaces (newlines kept so
/// offsets still map to lines); collect NOLINT(rule) waivers per line.
void scrub(SourceFile& f) {
  const std::string& in = f.raw;
  std::string out(in.size(), ' ');
  f.line_starts.push_back(0);
  for (std::size_t i = 0; i < in.size(); ++i) {
    if (in[i] == '\n') f.line_starts.push_back(i + 1);
  }

  static const std::regex nolint_re(R"(NOLINT\(([a-z][a-z0-9-]*)\))");
  for (auto it = std::sregex_iterator(in.begin(), in.end(), nolint_re);
       it != std::sregex_iterator(); ++it) {
    f.waivers[line_of(f, static_cast<std::size_t>(it->position()))].insert(
        (*it)[1].str());
  }

  enum class State { kCode, kLineComment, kBlockComment, kString, kChar };
  State st = State::kCode;
  for (std::size_t i = 0; i < in.size(); ++i) {
    const char c = in[i];
    const char next = i + 1 < in.size() ? in[i + 1] : '\0';
    switch (st) {
      case State::kCode:
        if (c == '/' && next == '/') {
          st = State::kLineComment;
        } else if (c == '/' && next == '*') {
          st = State::kBlockComment;
          ++i;
        } else if (c == '"') {
          st = State::kString;
        } else if (c == '\'') {
          st = State::kChar;
        } else {
          out[i] = c;
        }
        break;
      case State::kLineComment:
        if (c == '\n') {
          st = State::kCode;
          out[i] = c;
        }
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          st = State::kCode;
          ++i;
        } else if (c == '\n') {
          out[i] = c;
        }
        break;
      case State::kString:
        if (c == '\\') {
          ++i;
        } else if (c == '"') {
          st = State::kCode;
        } else if (c == '\n') {
          out[i] = c;  // unterminated; keep line mapping
          st = State::kCode;
        }
        break;
      case State::kChar:
        if (c == '\\') {
          ++i;
        } else if (c == '\'') {
          st = State::kCode;
        } else if (c == '\n') {
          out[i] = c;
          st = State::kCode;
        }
        break;
    }
    if (c == '\n') out[i] = '\n';
  }
  f.scrubbed = out;
}

bool path_contains(const fs::path& p, const std::string& needle) {
  return p.generic_string().find(needle) != std::string::npos;
}

void add_regex_findings(const SourceFile& f, const std::regex& re,
                        const std::string& rule, const std::string& message,
                        std::vector<Finding>& findings) {
  for (auto it = std::sregex_iterator(f.scrubbed.begin(), f.scrubbed.end(), re);
       it != std::sregex_iterator(); ++it) {
    const std::size_t line =
        line_of(f, static_cast<std::size_t>(it->position()));
    if (waived(f, line, rule)) continue;
    findings.push_back({f.path, line, rule, message + ": '" + it->str() + "'"});
  }
}

// --- rule: raw-decode ------------------------------------------------------

void rule_raw_decode(const SourceFile& f, std::vector<Finding>& findings) {
  if (path_contains(f.path, "util/bytes.h") ||
      path_contains(f.path, "util/bytes.cpp")) {
    return;  // the one sanctioned home of byte<->integer conversion
  }
  static const std::regex memcpy_re(R"(\bmem(cpy|move)\s*\()");
  static const std::regex reinterpret_re(R"(\breinterpret_cast\b)");
  static const std::regex shift_re(R"(\]\s*(<<|>>)\s*[0-9])");
  add_regex_findings(f, memcpy_re, "raw-decode",
                     "raw byte copy; use util::ByteReader/ByteWriter",
                     findings);
  add_regex_findings(f, reinterpret_re, "raw-decode",
                     "reinterpret_cast; byte<->char bridging lives in "
                     "util/bytes.cpp (read_exact/write_all)",
                     findings);
  add_regex_findings(f, shift_re, "raw-decode",
                     "shift-combine on a subscript; use util::load_* or "
                     "util::ByteReader",
                     findings);
}

// --- rule: wall-clock ------------------------------------------------------

void rule_wall_clock(const SourceFile& f, std::vector<Finding>& findings) {
  static const std::regex clock_re(
      R"(\b(system_clock|steady_clock|high_resolution_clock|random_device|gettimeofday|localtime|gmtime)\b)");
  static const std::regex rand_re(R"(\b(std::)?s?rand\s*\()");
  static const std::regex time_re(R"(\btime\s*\(\s*(NULL|nullptr|0)\s*\))");
  add_regex_findings(f, clock_re, "wall-clock",
                     "wall-clock / ambient randomness; simulations take "
                     "SimTime and seeded Rng",
                     findings);
  add_regex_findings(f, rand_re, "wall-clock",
                     "C PRNG; use the seeded util Rng", findings);
  add_regex_findings(f, time_re, "wall-clock",
                     "wall-clock read; simulations take SimTime", findings);
}

// --- rule: unordered-iter --------------------------------------------------

/// Names of variables declared with an unordered container type, collected
/// across every scanned file (members are declared in headers and iterated
/// in .cpp files).
std::set<std::string> collect_unordered_names(
    const std::vector<SourceFile>& files) {
  std::set<std::string> names;
  for (const auto& f : files) {
    const std::string& s = f.scrubbed;
    for (std::size_t pos = 0;;) {
      const std::size_t hit = std::min(s.find("unordered_map", pos),
                                       s.find("unordered_set", pos));
      if (hit == std::string::npos) break;
      std::size_t i = hit + std::string("unordered_map").size();
      pos = i;
      while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i])))
        ++i;
      if (i >= s.size() || s[i] != '<') continue;
      int depth = 0;
      for (; i < s.size(); ++i) {  // walk the balanced template argument list
        if (s[i] == '<') ++depth;
        if (s[i] == '>' && --depth == 0) {
          ++i;
          break;
        }
      }
      while (i < s.size() && (std::isspace(static_cast<unsigned char>(s[i])) ||
                              s[i] == '&'))
        ++i;
      std::string name;
      while (i < s.size() &&
             (std::isalnum(static_cast<unsigned char>(s[i])) || s[i] == '_'))
        name.push_back(s[i++]);
      while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i])))
        ++i;
      // A declaration introduces the name and then initializes, terminates,
      // or (for a parameter) closes the list.
      if (!name.empty() && i < s.size() &&
          (s[i] == ';' || s[i] == '=' || s[i] == '{' || s[i] == '(' ||
           s[i] == ',' || s[i] == ')')) {
        names.insert(name);
      }
    }
  }
  return names;
}

void rule_unordered_iter(const SourceFile& f,
                         const std::set<std::string>& names,
                         std::vector<Finding>& findings) {
  if (path_contains(f.path, "util/")) return;  // util::sorted_* lives here
  const std::string& s = f.scrubbed;
  static const std::regex for_re(R"(\bfor\s*\()");
  for (auto it = std::sregex_iterator(s.begin(), s.end(), for_re);
       it != std::sregex_iterator(); ++it) {
    // Find the ':' of a range-for at parenthesis depth 1 (ignoring '::').
    std::size_t i = static_cast<std::size_t>(it->position() + it->length());
    int depth = 1;
    std::size_t colon = std::string::npos;
    std::size_t close = std::string::npos;
    for (; i < s.size() && depth > 0; ++i) {
      const char c = s[i];
      if (c == '(') ++depth;
      if (c == ')' && --depth == 0) close = i;
      if (c == ';') break;  // classic for loop, not a range-for
      if (c == ':' && depth == 1) {
        if ((i > 0 && s[i - 1] == ':') || (i + 1 < s.size() && s[i + 1] == ':')) {
          continue;  // '::' qualifier
        }
        if (colon == std::string::npos) colon = i;
      }
    }
    if (colon == std::string::npos || close == std::string::npos) continue;
    const std::string range = s.substr(colon + 1, close - colon - 1);
    if (range.find("sorted_keys") != std::string::npos ||
        range.find("sorted_items") != std::string::npos ||
        range.find("sorted_values") != std::string::npos) {
      continue;  // sanctioned deterministic wrappers (util/det.h)
    }
    for (const auto& name : names) {
      static const std::string word_chars =
          "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_";
      std::size_t at = range.find(name);
      bool whole_word = false;
      while (at != std::string::npos && !whole_word) {
        const bool left_ok =
            at == 0 || word_chars.find(range[at - 1]) == std::string::npos;
        const std::size_t end = at + name.size();
        const bool right_ok = end >= range.size() ||
                              word_chars.find(range[end]) == std::string::npos;
        whole_word = left_ok && right_ok;
        at = range.find(name, at + 1);
      }
      if (!whole_word) continue;
      const std::size_t for_line =
          line_of(f, static_cast<std::size_t>(it->position()));
      const std::size_t range_line = line_of(f, colon + 1);
      if (waived(f, for_line, "unordered-iter") ||
          waived(f, range_line, "unordered-iter")) {
        continue;
      }
      findings.push_back(
          {f.path, for_line, "unordered-iter",
           "range-for over unordered container '" + name +
               "'; iterate util::sorted_keys/sorted_items or prove the fold "
               "order-independent and carry a NOLINT(unordered-iter) waiver"});
      break;  // one finding per loop
    }
  }
}

// --- rule: float-eq --------------------------------------------------------

void rule_float_eq(const SourceFile& f, std::vector<Finding>& findings) {
  static const std::regex lhs_re(R"(([0-9]+\.[0-9]*|\.[0-9]+)(e[+-]?[0-9]+)?f?\s*[=!]=)");
  static const std::regex rhs_re(R"([=!]=\s*[+-]?([0-9]+\.[0-9]*|\.[0-9]+))");
  add_regex_findings(f, lhs_re, "float-eq",
                     "exact floating-point equality; compare against an "
                     "epsilon or restructure",
                     findings);
  add_regex_findings(f, rhs_re, "float-eq",
                     "exact floating-point equality; compare against an "
                     "epsilon or restructure",
                     findings);
}

// --- rule: parse-optional --------------------------------------------------

void rule_parse_optional(const SourceFile& f, std::vector<Finding>& findings) {
  const std::string& s = f.scrubbed;
  static const std::regex parse_re(R"(\bparse_[A-Za-z0-9_]+\s*\()");
  for (auto it = std::sregex_iterator(s.begin(), s.end(), parse_re);
       it != std::sregex_iterator(); ++it) {
    const std::size_t at = static_cast<std::size_t>(it->position());
    // Statement prefix: everything back to the previous ; { } or #.
    std::size_t start = at;
    while (start > 0 && s[start - 1] != ';' && s[start - 1] != '{' &&
           s[start - 1] != '}' && s[start - 1] != '#') {
      --start;
    }
    std::string prefix = s.substr(start, at - start);
    while (!prefix.empty() &&
           std::isspace(static_cast<unsigned char>(prefix.back()))) {
      prefix.pop_back();
    }
    if (prefix.find("optional") != std::string::npos) continue;  // compliant
    // A call site, not a declaration: operator or keyword before the name.
    if (prefix.empty()) continue;
    const char last = prefix.back();
    if (std::string("=(,!<>|&+-*/?:").find(last) != std::string::npos) continue;
    if (prefix.find("return") != std::string::npos ||
        prefix.find("throw") != std::string::npos ||
        prefix.find("co_return") != std::string::npos) {
      continue;
    }
    const std::size_t line = line_of(f, at);
    if (waived(f, line, "parse-optional")) continue;
    findings.push_back({f.path, line, "parse-optional",
                        "parse_* must signal failure via std::optional "
                        "(truncated or malformed input is not a value)"});
  }
}

// --- rule: worker-capture --------------------------------------------------

/// The first lambda in a run_ordered()/parallel_for()/submit() call is the
/// one that runs on pool threads (produce / the shard body / the submitted
/// task); a blanket by-reference capture there puts silent shared-state
/// mutation one keystroke away. The sanctioned merge path is run_ordered's
/// consume callback, which runs on the calling thread — this rule only
/// inspects the worker lambda. `submit` covers ThreadPool::submit and, by
/// the same token, any future worker-dispatch entry point using that name
/// (e.g. the day-shard produce lambdas AttackEngine::run_days hands to the
/// executor are already caught via run_ordered).
void rule_worker_capture(const SourceFile& f, std::vector<Finding>& findings) {
  const std::string& s = f.scrubbed;
  static const std::regex call_re(R"(\b(run_ordered|parallel_for|submit)\b)");
  for (auto it = std::sregex_iterator(s.begin(), s.end(), call_re);
       it != std::sregex_iterator(); ++it) {
    // Walk forward to the first lambda-introducer '[' (one preceded, spaces
    // aside, by '(' ',' '{' or '='; a subscript follows an identifier or a
    // closing bracket instead). Stop at the first ';' — past the end of the
    // statement this call belongs to, and in a declaration/definition of
    // run_ordered/parallel_for themselves, before any body lambda.
    for (std::size_t i = static_cast<std::size_t>(it->position() + it->length());
         i < s.size() && s[i] != ';'; ++i) {
      if (s[i] != '[') continue;
      std::size_t j = i;
      while (j > 0 && std::isspace(static_cast<unsigned char>(s[j - 1]))) --j;
      const char prev = j > 0 ? s[j - 1] : '\0';
      if (prev != '(' && prev != ',' && prev != '{' && prev != '=') break;
      const std::size_t close = s.find(']', i);
      if (close == std::string::npos) break;
      std::string caps = s.substr(i + 1, close - i - 1);
      caps.erase(std::remove_if(caps.begin(), caps.end(),
                                [](unsigned char c) { return std::isspace(c); }),
                 caps.end());
      if (caps == "&" || caps.rfind("&,", 0) == 0) {
        const std::size_t line = line_of(f, i);
        if (!waived(f, line, "worker-capture")) {
          findings.push_back(
              {f.path, line, "worker-capture",
               "blanket [&] capture on a worker lambda; spell out every "
               "capture so shard-disjoint mutation (DESIGN.md §3d rule 2) is "
               "checkable at the call site"});
        }
      }
      break;  // only the first (worker) lambda of each call is inspected
    }
  }
}

// --- rule: raw-ofstream ----------------------------------------------------

/// Durable artifacts must reach disk through ColumnArchive::save_file /
/// util::write_all: that path owns the atomic tmp-write + rename, the
/// fsync, and the FaultPlan injection seam, so a raw std::ofstream
/// anywhere else is a write that crash-safety tests cannot see.
void rule_raw_ofstream(const SourceFile& f, std::vector<Finding>& findings) {
  if (path_contains(f.path, "util/columnar.cpp") ||
      path_contains(f.path, "util/bytes.cpp")) {
    return;  // the sanctioned artifact-write path
  }
  static const std::regex ofstream_re(R"(\b(basic_)?ofstream\b)");
  add_regex_findings(f, ofstream_re, "raw-ofstream",
                     "raw std::ofstream; durable writes go through "
                     "util::ColumnArchive::save_file / util::write_all "
                     "(atomic rename + fsync + fault-injection seam), or "
                     "carry a justified NOLINT(raw-ofstream) waiver",
                     findings);
}

// --- driver ----------------------------------------------------------------

bool load(const fs::path& p, SourceFile& f) {
  std::ifstream in(p, std::ios::binary);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  f.path = p;
  f.raw = buf.str();
  scrub(f);
  return true;
}

std::vector<fs::path> collect_sources(const std::vector<std::string>& roots) {
  std::vector<fs::path> out;
  for (const auto& root : roots) {
    fs::path p(root);
    if (fs::is_regular_file(p)) {
      out.push_back(p);
      continue;
    }
    if (!fs::is_directory(p)) continue;
    for (const auto& e : fs::recursive_directory_iterator(p)) {
      if (!e.is_regular_file()) continue;
      const auto ext = e.path().extension().string();
      if (ext == ".h" || ext == ".cpp" || ext == ".cc" || ext == ".hpp") {
        out.push_back(e.path());
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<Finding> run_rules(const std::vector<SourceFile>& files) {
  std::vector<Finding> findings;
  const auto unordered_names = collect_unordered_names(files);
  for (const auto& f : files) {
    rule_raw_decode(f, findings);
    rule_wall_clock(f, findings);
    rule_unordered_iter(f, unordered_names, findings);
    rule_float_eq(f, findings);
    rule_parse_optional(f, findings);
    rule_worker_capture(f, findings);
    rule_raw_ofstream(f, findings);
  }
  return findings;
}

int lint_tree(const std::vector<std::string>& roots) {
  std::vector<SourceFile> files;
  for (const auto& p : collect_sources(roots)) {
    SourceFile f;
    if (load(p, f)) files.push_back(std::move(f));
  }
  const auto findings = run_rules(files);
  for (const auto& fd : findings) {
    std::fprintf(stderr, "%s:%zu: [%s] %s\n", fd.path.string().c_str(),
                 fd.line, fd.rule.c_str(), fd.message.c_str());
  }
  std::fprintf(stderr, "gorilla_lint: %zu file(s), %zu finding(s)\n",
               files.size(), findings.size());
  return findings.empty() ? 0 : 1;
}

/// Each fixtures/bad_<rule>.cpp must trip rule <rule> (underscores in the
/// file name map to dashes) and trip nothing else.
int self_test(const std::string& fixtures_dir) {
  int failures = 0;
  std::size_t fixtures = 0;
  for (const auto& p : collect_sources({fixtures_dir})) {
    const std::string stem = p.stem().string();
    if (stem.rfind("bad_", 0) != 0) continue;
    ++fixtures;
    std::string expected = stem.substr(4);
    std::replace(expected.begin(), expected.end(), '_', '-');
    SourceFile f;
    if (!load(p, f)) {
      std::fprintf(stderr, "FAIL %s: unreadable\n", p.string().c_str());
      ++failures;
      continue;
    }
    const auto findings = run_rules({f});
    bool tripped = false;
    bool others = false;
    for (const auto& fd : findings) {
      if (fd.rule == expected) {
        tripped = true;
      } else {
        others = true;
        std::fprintf(stderr, "FAIL %s: unexpected [%s] at line %zu\n",
                     p.string().c_str(), fd.rule.c_str(), fd.line);
      }
    }
    if (!tripped) {
      std::fprintf(stderr, "FAIL %s: rule [%s] did not fire\n",
                   p.string().c_str(), expected.c_str());
    }
    if (!tripped || others) ++failures;
  }
  if (fixtures == 0) {
    std::fprintf(stderr, "gorilla_lint --self-test: no bad_<rule> fixtures "
                         "under %s\n", fixtures_dir.c_str());
    return 1;
  }
  std::fprintf(stderr, "gorilla_lint --self-test: %zu fixture(s), %d failure(s)\n",
               fixtures, failures);
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  if (args.empty()) {
    std::fprintf(stderr,
                 "usage: gorilla_lint <dir-or-file>...\n"
                 "       gorilla_lint --self-test <fixtures-dir>\n");
    return 2;
  }
  if (args[0] == "--self-test") {
    if (args.size() != 2) {
      std::fprintf(stderr, "--self-test takes exactly one directory\n");
      return 2;
    }
    return self_test(args[1]);
  }
  return lint_tree(args);
}
