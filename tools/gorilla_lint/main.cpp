// gorilla_lint — self-hosted static checks for the gorilla tree.
//
// v2: the analysis moved into the tools/lint library — a real C++ lexer
// (raw strings, digit separators, encoding prefixes), the single-file
// rules, the include-graph pass (layer-break / layer-cycle against the
// DESIGN §3f DAG), and the stale-waiver pass — with parallel per-file
// analysis, a content-hash cache, baselines, and JSON output. This file
// is only the CLI entry point; run with no arguments for usage, and see
// DESIGN.md "Static analysis v2" for the rule catalogue.
#include <string>
#include <vector>

#include "tools/lint/lint.h"

int main(int argc, char** argv) {
  return gorilla::lint::run_cli(
      std::vector<std::string>(argv + 1, argv + argc));
}
