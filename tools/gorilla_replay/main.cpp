// gorilla_replay — multi-backend replay driver (ROADMAP "Multi-backend
// replay", DESIGN.md §3h).
//
// Loads a recorded study artifact (GORCOLv1 through v3, torn-prefix
// tolerant) and
// fans the typed event stream out to any combination of replay backends:
//
//   detector  study::DetectorSink   — streaming anomaly detection + quality
//                                     vs recorded truth → OUT/detector.txt
//   pcap      study::PcapExportSink — mode-7 exchanges for attack windows
//                                     → OUT/attacks.pcap
//   csv       study::CsvExportSink  — streaming CSV projections
//                                     → OUT/{global,labels,summaries}.csv
//
// Each selected sink gets its own full ordered pass over the stream (the
// passes share the immutable loaded archive); --jobs K runs up to K passes
// concurrently. Per-sink output is a pure function of the artifact, so it
// is byte-identical for every K — and identical to a LIVE run of the same
// study with the sink riding the bus (--live re-simulates from the
// artifact's own header and proves exactly that; scripts/check.sh diffs
// the two). Diagnostics go to stderr; stdout stays empty.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common.h"
#include "study/csv_export_sink.h"
#include "study/detector_sink.h"
#include "study/pcap_export_sink.h"
#include "study/recorder.h"
#include "util/mem_stats.h"
#include "util/time.h"

namespace {

using gorilla::util::SimTime;

void usage(std::FILE* out, const char* argv0) {
  std::fprintf(
      out,
      "usage: %s --artifact PATH [--sinks detector,pcap,csv] [--weeks N]\n"
      "       [--jobs K] [--out DIR] [--live] [--mem-report]\n"
      "\n"
      "  --artifact PATH  recorded study (GORCOLv1-v3; torn prefixes OK)\n"
      "  --sinks LIST     comma-separated backends (default: detector)\n"
      "  --weeks N        replay at most N complete weeks (N >= 0;\n"
      "                   StudyPipeline recordings only)\n"
      "  --jobs K         run up to K sink passes concurrently (K >= 1;\n"
      "                   output is identical for every K)\n"
      "  --out DIR        output directory (default: .)\n"
      "  --live           re-simulate from the artifact's header with the\n"
      "                   sinks riding the live bus (equivalence check)\n"
      "  --mem-report     print the MemStats registry to stderr at exit\n",
      argv0);
}

[[noreturn]] void die(const std::string& message) {
  std::fprintf(stderr, "gorilla_replay: %s\n", message.c_str());
  std::exit(2);
}

/// Strict integer read (whole string, bounds checked); exits 2 on junk.
long int_arg(const char* text, const char* flag, long min_value,
             long max_value) {
  char* end = nullptr;
  const long v = std::strtol(text, &end, 10);
  if (end == text || *end != '\0' || v < min_value || v > max_value) {
    die(std::string("invalid value for ") + flag + ": '" + text +
        "' (expected an integer in [" + std::to_string(min_value) + ", " +
        std::to_string(max_value) + "])");
  }
  return v;
}

struct Args {
  std::string artifact;
  std::vector<std::string> sinks = {"detector"};
  int weeks = -1;  ///< -1 = every complete week
  int jobs = 1;
  std::string out_dir = ".";
  bool live = false;
};

Args read_args(int argc, char** argv) {
  Args args;
  bool sinks_set = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* name) -> const char* {
      if (i + 1 >= argc) die(std::string("missing value for ") + name);
      return argv[++i];
    };
    if (arg == "--artifact") {
      args.artifact = value("--artifact");
    } else if (arg == "--sinks") {
      args.sinks.clear();
      sinks_set = true;
      std::string list = value("--sinks");
      std::size_t from = 0;
      while (from <= list.size()) {
        const std::size_t comma = list.find(',', from);
        const std::string name =
            list.substr(from, comma == std::string::npos ? std::string::npos
                                                         : comma - from);
        if (!name.empty()) args.sinks.push_back(name);
        if (comma == std::string::npos) break;
        from = comma + 1;
      }
      if (args.sinks.empty()) {
        die("--sinks needs at least one of: csv, detector, pcap");
      }
      for (const auto& name : args.sinks) {
        if (name != "detector" && name != "pcap" && name != "csv") {
          die("unknown sink '" + name + "' (valid: csv, detector, pcap)");
        }
      }
    } else if (arg == "--weeks") {
      args.weeks =
          static_cast<int>(int_arg(value("--weeks"), "--weeks", 0, 1 << 16));
    } else if (arg == "--jobs") {
      args.jobs =
          static_cast<int>(int_arg(value("--jobs"), "--jobs", 1, 1 << 10));
    } else if (arg == "--out") {
      args.out_dir = value("--out");
    } else if (arg == "--live") {
      args.live = true;
    } else if (arg == "--mem-report") {
      std::atexit([] {
        gorilla::util::MemStats::instance().report(stderr);
      });
    } else if (arg == "--help" || arg == "-h") {
      usage(stdout, argv[0]);
      std::exit(0);
    } else {
      usage(stderr, argv[0]);
      die("unknown argument '" + arg + "'");
    }
  }
  (void)sinks_set;
  if (args.artifact.empty()) {
    usage(stderr, argv[0]);
    die("--artifact PATH is required");
  }
  return args;
}

/// One replay backend: the sink, its output streams, and the finalization
/// that flushes results to disk. finish() returns false on any I/O failure
/// — which the driver turns into a nonzero exit (the pcap/CSV sinks carry
/// sticky ok() exactly so failures cannot be dropped at exit).
struct Backend {
  virtual ~Backend() = default;
  [[nodiscard]] virtual const char* name() const = 0;
  [[nodiscard]] virtual gorilla::study::EventSink& sink() = 0;
  [[nodiscard]] virtual bool finish() = 0;
  double seconds = 0.0;
};

struct DetectorBackend final : Backend {
  DetectorBackend(const gorilla::study::DetectorSinkConfig& cfg,
                  std::string path)
      : impl(cfg), out_path(std::move(path)) {}

  [[nodiscard]] const char* name() const override { return "detector"; }
  [[nodiscard]] gorilla::study::EventSink& sink() override { return impl; }
  [[nodiscard]] bool finish() override {
    impl.finish();
    // Plain text report, not a durable artifact: byte-diffed by tests and
    // check.sh, failure surfaces through the exit code below.
    std::ofstream out(out_path,  // NOLINT(raw-ofstream)
                      std::ios::binary | std::ios::trunc);
    out << impl.render();
    out.flush();
    std::fprintf(stderr,
                 "[replay] detector: %zu episode(s), recall=%.3f "
                 "precision=%.3f -> %s\n",
                 impl.attacks().size(), impl.quality().recall(),
                 impl.quality().precision(), out_path.c_str());
    return out.good();
  }

  gorilla::study::DetectorSink impl;
  std::string out_path;
};

struct PcapBackend final : Backend {
  PcapBackend(const gorilla::study::PcapExportSinkConfig& cfg,
              const std::string& path)
      : out(path, std::ios::binary | std::ios::trunc),
        impl(out, cfg),
        out_path(path) {}

  [[nodiscard]] const char* name() const override { return "pcap"; }
  [[nodiscard]] gorilla::study::EventSink& sink() override { return impl; }
  [[nodiscard]] bool finish() override {
    out.flush();
    std::fprintf(stderr,
                 "[replay] pcap: %llu window(s), %llu exchange(s), %llu "
                 "packet(s) -> %s\n",
                 static_cast<unsigned long long>(impl.windows_selected()),
                 static_cast<unsigned long long>(impl.exchanges_written()),
                 static_cast<unsigned long long>(impl.packets_written()),
                 out_path.c_str());
    return impl.ok() && out.good();
  }

  // Streaming capture, not an atomic artifact: the pcap grows record by
  // record and sink ok() + exit code carry failure.
  std::ofstream out;  // NOLINT(raw-ofstream)
  gorilla::study::PcapExportSink impl;
  std::string out_path;
};

struct CsvBackend final : Backend {
  explicit CsvBackend(const std::string& dir)
      : global(dir + "/global.csv", std::ios::trunc),
        labels(dir + "/labels.csv", std::ios::trunc),
        summaries(dir + "/summaries.csv", std::ios::trunc),
        impl(&global, &labels, &summaries),
        out_dir(dir) {}

  [[nodiscard]] const char* name() const override { return "csv"; }
  [[nodiscard]] gorilla::study::EventSink& sink() override { return impl; }
  [[nodiscard]] bool finish() override {
    global.flush();
    labels.flush();
    summaries.flush();
    std::fprintf(stderr, "[replay] csv: %llu row(s) -> %s/{global,labels,"
                         "summaries}.csv\n",
                 static_cast<unsigned long long>(impl.rows_written()),
                 out_dir.c_str());
    return impl.ok();
  }

  // Streaming projections; row-by-row writes, failure carried by ok().
  std::ofstream global, labels, summaries;  // NOLINT(raw-ofstream)
  gorilla::study::CsvExportSink impl;
  std::string out_dir;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace gorilla;
  const Args args = read_args(argc, argv);

  study::Replayer replayer;
  replayer.set_decode_jobs(args.jobs);
  study::ReplayReport load_report;
  if (!replayer.load_prefix(args.artifact, load_report)) {
    die(study::Replayer::describe_load_failure(args.artifact));
  }
  const study::StudyHeader header = replayer.header();
  const bool is_study = header.kind == 0;
  if (!is_study && header.kind != 1) {
    die("'" + args.artifact + "': unknown recording kind " +
        std::to_string(header.kind));
  }
  if (!is_study && args.weeks >= 0) {
    die("--weeks applies to StudyPipeline recordings only; '" +
        args.artifact + "' is a regional (kind 1) recording with no week "
        "markers");
  }
  if (args.live && !is_study) {
    die("--live supports StudyPipeline recordings only");
  }
  if (args.live && args.weeks >= 0) {
    die("--live always runs the full recorded horizon; drop --weeks");
  }

  const int complete = is_study ? replayer.complete_weeks() : 0;
  std::fprintf(stderr,
               "[replay] loaded %s: kind=%s scale=%u seed=%llu "
               "complete_weeks=%d%s\n",
               args.artifact.c_str(), is_study ? "study" : "regional",
               header.scale, static_cast<unsigned long long>(header.seed),
               complete, load_report.clean ? "" : " (torn prefix)");
  if (!load_report.clean && load_report.truncated_at.has_value()) {
    std::fprintf(stderr,
                 "[replay] container damage at offset %llu "
                 "(%zu section(s) intact, %zu checksum failure(s))\n",
                 static_cast<unsigned long long>(*load_report.truncated_at),
                 load_report.sections_ok, load_report.crc_failures);
  }

  // The detector window is a pure function of the header (and the week
  // cap), so a live run and a replay of the same artifact configure the
  // identical sink. Study sample weeks probe at day 70 + week*7; the window
  // covers every attack day up to the last replayed sample.
  const int horizon = is_study ? header.param_a : 0;
  const int weeks_used =
      args.live ? horizon
                : (args.weeks >= 0 ? std::min(args.weeks, complete) : complete);
  study::DetectorSinkConfig det_cfg;
  if (is_study) {
    det_cfg.window_start = 0;
    det_cfg.window_end =
        weeks_used > 0
            ? static_cast<SimTime>(70 + (weeks_used - 1) * 7 + 1) *
                  util::kSecondsPerDay
            : 0;
  } else {
    det_cfg.window_start =
        static_cast<SimTime>(header.param_a) * util::kSecondsPerDay;
    det_cfg.window_end =
        static_cast<SimTime>(header.param_b) * util::kSecondsPerDay;
  }
  det_cfg.bucket_seconds = 300;
  det_cfg.detector.floor_bps = 5e6;

  study::PcapExportSinkConfig pcap_cfg;  // auto windows from NTP labels

  std::error_code ec;
  std::filesystem::create_directories(args.out_dir, ec);
  if (ec) die("cannot create --out directory '" + args.out_dir + "'");

  std::vector<std::unique_ptr<Backend>> backends;
  for (const auto& name : args.sinks) {
    if (name == "detector") {
      backends.push_back(std::make_unique<DetectorBackend>(
          det_cfg, args.out_dir + "/detector.txt"));
    } else if (name == "pcap") {
      backends.push_back(std::make_unique<PcapBackend>(
          pcap_cfg, args.out_dir + "/attacks.pcap"));
    } else {
      backends.push_back(std::make_unique<CsvBackend>(args.out_dir));
    }
  }

  // Tool timing, not simulation state (the [replay] sink lines on stderr).
  using Clock = std::chrono::steady_clock;  // NOLINT(wall-clock)
  bool stream_ok = true;
  if (args.live) {
    // Rebuild the exact harness the artifact's header describes and run it
    // live with every backend riding the bus.
    bench::Options opt;
    opt.scale = header.scale;
    opt.seed = header.seed;
    opt.quick = header.quick;
    opt.jobs = args.jobs;
    bench::StudyPipeline pipeline(opt, header.with_vantages,
                                  header.with_darknet);
    for (auto& backend : backends) {
      pipeline.extra_sinks.push_back(&backend->sink());
    }
    const auto t0 = Clock::now();
    pipeline.run();
    const double elapsed = std::chrono::duration<double>(Clock::now() - t0)
                               .count();
    for (auto& backend : backends) backend->seconds = elapsed;
  } else {
    // One full ordered pass per backend over the shared immutable archive;
    // up to --jobs passes in flight at once. Per-sink results cannot
    // depend on K: every pass is independent and read-only.
    auto run_pass = [&](Backend& backend) {
      const auto t0 = Clock::now();
      bool ok = true;
      if (is_study) {
        study::ReplayReport pass_report;
        ok = replayer.replay_prefix(backend.sink(),
                                    args.weeks >= 0 ? args.weeks : -1,
                                    pass_report);
      } else {
        // Regional recordings have no week markers; a torn one still
        // yields its longest decodable prefix (replay() reports it).
        ok = replayer.replay(backend.sink());
        if (!ok && !load_report.clean) ok = true;  // expected for torn input
      }
      backend.seconds =
          std::chrono::duration<double>(Clock::now() - t0).count();
      return ok;
    };
    std::size_t next = 0;
    while (next < backends.size()) {
      const std::size_t batch = std::min<std::size_t>(
          static_cast<std::size_t>(args.jobs), backends.size() - next);
      std::vector<std::thread> threads;
      std::vector<char> oks(batch, 1);
      for (std::size_t j = 1; j < batch; ++j) {
        threads.emplace_back([&, j] {
          oks[j] = run_pass(*backends[next + j]) ? 1 : 0;
        });
      }
      oks[0] = run_pass(*backends[next]) ? 1 : 0;
      for (auto& t : threads) t.join();
      for (const char ok : oks) stream_ok = stream_ok && ok != 0;
      next += batch;
    }
  }

  bool io_ok = true;
  for (auto& backend : backends) {
    const bool ok = backend->finish();
    std::fprintf(stderr, "[replay] sink %-8s %8.3fs %s\n", backend->name(),
                 backend->seconds, ok ? "ok" : "FAILED");
    io_ok = io_ok && ok;
  }
  if (!stream_ok) {
    std::fprintf(stderr, "gorilla_replay: stream validation failed (torn "
                         "artifact changed underneath the passes?)\n");
    return 1;
  }
  if (!io_ok) {
    std::fprintf(stderr, "gorilla_replay: one or more sinks failed to write "
                         "their output\n");
    return 1;
  }
  return 0;
}
