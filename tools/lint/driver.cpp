// gorilla-lint v2 — the analysis driver.
//
// analyze() is the deterministic pipeline over in-memory documents:
// parallel lex+summary, global container-name pooling, parallel rules
// (both phases cacheable by content hash), then the serial graph and
// stale-waiver passes, sorted findings, and baseline subtraction. The
// result is byte-identical for any --jobs value because every mutation is
// per-file and the merge walks files in input order.
//
// run_cli() wraps that in the tree walk, the content-hash cache file, the
// artifact writers, and the --self-test harness.
#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "tools/lint/internal.h"
#include "util/thread_pool.h"

namespace gorilla::lint {

namespace {

constexpr const char* kToolVersion = "gorilla-lint v2.0";
constexpr const char* kCacheMagic = "gorilla-lint-cache 2";

/// All rules, for self-test coverage accounting and cache context hashing.
const std::vector<std::string>& all_rules() {
  static const std::vector<std::string> kRules = {
      "raw-decode",   "wall-clock",     "unordered-iter", "float-eq",
      "parse-optional", "worker-capture", "raw-ofstream",   "shard-mutation",
      "shared-rng",   "layer-break",    "layer-cycle",    "stale-waiver",
      "heavy-node-container", "codec-escape",
  };
  return kRules;
}

// --- parallel execution ----------------------------------------------------

/// Runs fn(0..n-1) on a ThreadPool. The pool has no join primitive by
/// design (DESIGN §3d: ordering lives in the callers), so completion is
/// counted under a mutex here.
void parallel_each(std::size_t n, int jobs,
                   const std::function<void(std::size_t)>& fn) {
  if (jobs <= 1 || n <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  util::ThreadPool pool(std::min(jobs, static_cast<int>(n)));
  std::mutex mu;
  std::condition_variable cv;
  std::size_t done = 0;
  for (std::size_t i = 0; i < n; ++i) {
    pool.submit([&fn, &mu, &cv, &done, i] {
      fn(i);
      {
        std::lock_guard<std::mutex> lock(mu);
        ++done;  // NOLINT(shard-mutation): completion counter, held under mu
      }
      cv.notify_one();
    });
  }
  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock, [&done, n] { return done == n; });
}

// --- cache -----------------------------------------------------------------

struct CacheEntry {
  std::uint64_t content_hash = 0;
  FileSummary summary;
  bool has_results = false;
  std::uint64_t context_hash = 0;
  FileResults results;
};

using CacheMap = std::map<std::string, CacheEntry>;

std::string hex(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::string cur;
  for (const char c : s) {
    if (c == sep) {
      out.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  out.push_back(cur);
  return out;
}

CacheMap load_cache(const std::string& path) {
  CacheMap out;
  std::ifstream in(path);
  if (!in) return out;
  std::string line;
  if (!std::getline(in, line) || line != kCacheMagic) return out;
  CacheEntry* cur = nullptr;
  std::string cur_path;
  const auto to_u64 = [](const std::string& s) {
    return std::strtoull(s.c_str(), nullptr, 16);
  };
  const auto to_line = [](const std::string& s) {
    return static_cast<std::size_t>(std::strtoull(s.c_str(), nullptr, 10));
  };
  while (std::getline(in, line)) {
    if (line.size() < 2 || line[1] != ' ') continue;
    const char tag = line[0];
    const std::string rest = line.substr(2);
    if (tag == 'F') {
      const std::size_t sp = rest.find(' ');
      if (sp == std::string::npos) {
        cur = nullptr;
        continue;
      }
      cur_path = rest.substr(sp + 1);
      cur = &out[cur_path];
      cur->content_hash = to_u64(rest.substr(0, sp));
      continue;
    }
    if (cur == nullptr) continue;
    switch (tag) {
      case 'N':
        cur->summary.unordered_names.push_back(rest);
        break;
      case 'I': {
        const std::vector<std::string> p = split(rest, ' ');
        if (p.size() < 3) break;
        std::string target = p[2];
        for (std::size_t i = 3; i < p.size(); ++i) target += " " + p[i];
        cur->summary.includes.push_back(
            IncludeDirective{to_line(p[0]), target, p[1] == "1"});
        break;
      }
      case 'W': {
        const std::vector<std::string> p = split(rest, ' ');
        if (p.size() == 2) cur->summary.waivers[to_line(p[0])].insert(p[1]);
        break;
      }
      case 'L':
        cur->summary.directives.layer = rest;
        break;
      case 'E': {
        const std::vector<std::string> p = split(rest, ' ');
        if (p.size() == 2) {
          cur->summary.directives.expects.push_back({to_line(p[0]), p[1]});
        }
        break;
      }
      case 'R':
        cur->has_results = true;
        cur->context_hash = to_u64(rest);
        break;
      case 'X': {
        const std::vector<std::string> p = split(rest, '\x1f');
        if (p.size() == 4) {
          cur->results.findings.push_back(
              Finding{cur_path, to_line(p[0]), p[1], p[2], p[3]});
        }
        break;
      }
      case 'U': {
        const std::vector<std::string> p = split(rest, ' ');
        if (p.size() == 2) {
          cur->results.used_waivers.insert({to_line(p[0]), p[1]});
        }
        break;
      }
      default:
        break;
    }
  }
  return out;
}

void save_cache(const std::string& path, const std::vector<SourceFile>& files,
                std::uint64_t context_hash) {
  // Regenerable tool state, not a study artifact — the crash-safe
  // ColumnArchive path would be overkill here.
  std::ofstream out(path, std::ios::trunc);  // NOLINT(raw-ofstream)
  if (!out) return;
  out << kCacheMagic << "\n";
  for (const SourceFile& f : files) {
    out << "F " << hex(f.content_hash) << " " << f.path << "\n";
    for (const auto& n : f.summary.unordered_names) out << "N " << n << "\n";
    for (const auto& inc : f.summary.includes) {
      out << "I " << inc.line << " " << (inc.angled ? 1 : 0) << " "
          << inc.target << "\n";
    }
    for (const auto& [line, rules] : f.summary.waivers) {
      for (const auto& r : rules) out << "W " << line << " " << r << "\n";
    }
    if (!f.summary.directives.layer.empty()) {
      out << "L " << f.summary.directives.layer << "\n";
    }
    for (const auto& [line, rule] : f.summary.directives.expects) {
      out << "E " << line << " " << rule << "\n";
    }
    out << "R " << hex(context_hash) << "\n";
    for (const Finding& fd : f.results.findings) {
      out << "X " << fd.line << '\x1f' << fd.rule << '\x1f' << fd.message
          << '\x1f' << fd.snippet << "\n";
    }
    for (const auto& [line, rule] : f.results.used_waivers) {
      out << "U " << line << " " << rule << "\n";
    }
  }
}

// --- baseline --------------------------------------------------------------

/// Baseline keys are checkout-independent: the path is trimmed to the
/// first tree-root component so `/home/a/repo/src/...` and `src/...`
/// match.
std::string normalize_path(const std::string& path) {
  static const std::vector<std::string> kRoots = {"src/", "tests/", "tools/",
                                                  "bench/", "examples/"};
  for (const std::string& root : kRoots) {
    if (path.rfind(root, 0) == 0) return path;
    const std::size_t at = path.find("/" + root);
    if (at != std::string::npos) return path.substr(at + 1);
  }
  return path;
}

std::string baseline_key(const Finding& f) {
  return f.rule + "\t" + normalize_path(f.path) + "\t" + f.snippet;
}

std::map<std::string, int> load_baseline(const std::string& path) {
  std::map<std::string, int> out;
  std::ifstream in(path);
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line[0] != '#') ++out[line];
  }
  return out;
}

// --- output ----------------------------------------------------------------

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

void print_findings(const AnalysisResult& result, bool json) {
  if (json) {
    std::ostringstream out;
    out << "{\n  \"tool\": \"" << kToolVersion << "\",\n  \"files\": "
        << result.file_count << ",\n  \"cache_hits\": " << result.cache_hits
        << ",\n  \"baseline_suppressed\": " << result.baseline_suppressed
        << ",\n  \"findings\": [";
    for (std::size_t i = 0; i < result.findings.size(); ++i) {
      const Finding& f = result.findings[i];
      out << (i == 0 ? "" : ",") << "\n    {\"path\": \""
          << json_escape(f.path) << "\", \"line\": " << f.line
          << ", \"rule\": \"" << json_escape(f.rule) << "\", \"message\": \""
          << json_escape(f.message) << "\", \"snippet\": \""
          << json_escape(f.snippet) << "\"}";
    }
    out << (result.findings.empty() ? "]" : "\n  ]") << "\n}\n";
    std::fputs(out.str().c_str(), stdout);
    return;
  }
  for (const Finding& f : result.findings) {
    std::printf("%s:%zu: [%s] %s\n", f.path.c_str(), f.line, f.rule.c_str(),
                f.message.c_str());
    if (!f.snippet.empty()) std::printf("    %s\n", f.snippet.c_str());
  }
}

// --- tree walk -------------------------------------------------------------

bool lintable(const std::filesystem::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".hpp" || ext == ".cpp" || ext == ".cc" ||
         ext == ".cxx";
}

std::optional<std::string> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// Collects lintable files under each root (files are taken verbatim),
/// sorted for deterministic ordering.
std::vector<std::string> collect_paths(const std::vector<std::string>& roots) {
  std::vector<std::string> out;
  for (const std::string& root : roots) {
    std::error_code ec;
    if (std::filesystem::is_directory(root, ec)) {
      for (auto it = std::filesystem::recursive_directory_iterator(root, ec);
           !ec && it != std::filesystem::recursive_directory_iterator();
           it.increment(ec)) {
        if (it->is_regular_file(ec) && lintable(it->path())) {
          out.push_back(it->path().generic_string());
        }
      }
    } else if (std::filesystem::is_regular_file(root, ec)) {
      out.push_back(root);
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

// --- self-test -------------------------------------------------------------

/// Each tests/tools/bad_<rule>.cpp must trip exactly its rule; fixtures
/// carrying LINT-EXPECT[rule] markers instead pin the exact (line, rule)
/// set. Coverage of every registered rule is enforced at the end.
int self_test(const std::string& dir) {
  std::vector<std::string> fixtures;
  std::error_code ec;
  for (auto it = std::filesystem::directory_iterator(dir, ec);
       !ec && it != std::filesystem::directory_iterator(); it.increment(ec)) {
    const std::string name = it->path().filename().string();
    if (it->is_regular_file(ec) && name.rfind("bad_", 0) == 0 &&
        it->path().extension() == ".cpp") {
      fixtures.push_back(it->path().generic_string());
    }
  }
  std::sort(fixtures.begin(), fixtures.end());
  if (fixtures.empty()) {
    std::fprintf(stderr, "self-test: no bad_*.cpp fixtures under %s\n",
                 dir.c_str());
    return 1;
  }
  int failures = 0;
  std::set<std::string> covered;
  for (const std::string& path : fixtures) {
    const std::optional<std::string> content = read_file(path);
    if (!content) {
      std::fprintf(stderr, "self-test: cannot read %s\n", path.c_str());
      ++failures;
      continue;
    }
    // Directives come from a private lex: analyze() does not export them.
    SourceFile probe;
    probe.path = path;
    probe.raw = *content;
    build_summary(probe);
    const auto& expects = probe.summary.directives.expects;

    AnalysisResult result =
        analyze({SourceDoc{path, *content}}, Options{});
    std::set<std::pair<std::size_t, std::string>> actual;
    for (const Finding& f : result.findings) {
      actual.insert({f.line, f.rule});
      covered.insert(f.rule);
    }
    bool ok = true;
    std::string detail;
    if (!expects.empty()) {
      const std::set<std::pair<std::size_t, std::string>> expected(
          expects.begin(), expects.end());
      ok = actual == expected;
      if (!ok) {
        detail = "LINT-EXPECT mismatch; got:";
        for (const auto& [line, rule] : actual) {
          detail += " " + std::to_string(line) + ":" + rule;
        }
        if (actual.empty()) detail += " (nothing)";
      }
      for (const auto& [line, rule] : expected) {
        (void)line;
        covered.insert(rule);
      }
    } else {
      const std::string stem =
          std::filesystem::path(path).stem().string().substr(4);
      std::string rule = stem;
      std::replace(rule.begin(), rule.end(), '_', '-');
      if (actual.empty()) {
        ok = false;
        detail = "expected a " + rule + " finding, got none";
      }
      for (const auto& [line, got] : actual) {
        if (got != rule) {
          ok = false;
          detail += (detail.empty() ? "" : "; ") + std::string("stray ") +
                    got + " finding at line " + std::to_string(line);
        }
      }
      covered.insert(rule);
    }
    std::printf("self-test %-28s %s\n",
                std::filesystem::path(path).filename().string().c_str(),
                ok ? "OK" : "FAIL");
    if (!ok) {
      std::printf("  %s\n", detail.c_str());
      ++failures;
    }
  }
  for (const std::string& rule : all_rules()) {
    if (covered.count(rule) != 0) continue;
    std::printf("self-test coverage              FAIL\n  no fixture "
                "exercises rule '%s'\n",
                rule.c_str());
    ++failures;
  }
  std::printf("self-test: %zu fixtures, %d failure%s\n", fixtures.size(),
              failures, failures == 1 ? "" : "s");
  return failures == 0 ? 0 : 1;
}

int usage() {
  std::fprintf(
      stderr,
      "usage: gorilla_lint [options] <path>...\n"
      "       gorilla_lint --self-test <fixture-dir>\n"
      "options:\n"
      "  --jobs N              worker threads (default: hardware)\n"
      "  --format text|json    findings output format\n"
      "  --baseline FILE       subtract known findings\n"
      "  --write-baseline FILE write current findings as the new baseline\n"
      "  --dot FILE            write the include-graph DOT artifact\n"
      "  --cache FILE          per-file content-hash result cache\n");
  return 2;
}

}  // namespace

AnalysisResult analyze(std::vector<SourceDoc> docs, const Options& options) {
  AnalysisResult result;
  std::vector<SourceFile> files(docs.size());
  for (std::size_t i = 0; i < docs.size(); ++i) {
    files[i].path = docs[i].path;
    files[i].raw = std::move(docs[i].content);
    files[i].content_hash = fnv1a(files[i].raw);
  }
  result.file_count = files.size();

  CacheMap cache;
  if (!options.cache_path.empty()) cache = load_cache(options.cache_path);

  // Phase 1 (parallel): lex + per-file summary. The lex always runs — the
  // serial passes need line text for snippets — but summary extraction is
  // skipped on a content-hash hit.
  parallel_each(files.size(), options.jobs, [&files, &cache](std::size_t i) {
    SourceFile& f = files[i];
    ensure_lexed(f);
    const auto it = cache.find(f.path);
    if (it != cache.end() && it->second.content_hash == f.content_hash) {
      f.summary = it->second.summary;
      f.summary_from_cache = true;
    } else {
      build_summary(f);
    }
  });

  // The global container-name pool (members are declared in headers and
  // iterated in .cpp files) doubles as the rules' context hash: when any
  // file adds or removes a name, every cached result is invalidated.
  std::set<std::string> unordered_names;
  for (const SourceFile& f : files) {
    unordered_names.insert(f.summary.unordered_names.begin(),
                           f.summary.unordered_names.end());
  }
  std::string context_blob = std::string(kToolVersion) + "\n";
  for (const std::string& n : unordered_names) context_blob += n + "\n";
  const std::uint64_t context_hash = fnv1a(context_blob);

  // Phase 2 (parallel): every single-file rule, cacheable on
  // (content, context).
  parallel_each(files.size(), options.jobs,
                [&files, &cache, &unordered_names,
                 context_hash](std::size_t i) {
    SourceFile& f = files[i];
    const auto it = cache.find(f.path);
    if (it != cache.end() && it->second.content_hash == f.content_hash &&
        it->second.has_results && it->second.context_hash == context_hash) {
      f.results = it->second.results;
      f.results_from_cache = true;
    } else {
      run_file_rules(f, unordered_names);
    }
  });
  for (const SourceFile& f : files) {
    result.cache_hits += f.results_from_cache ? 1 : 0;
  }

  // Serial passes, then a canonical ordering regardless of jobs.
  std::vector<Finding> findings;
  for (const SourceFile& f : files) {
    findings.insert(findings.end(), f.results.findings.begin(),
                    f.results.findings.end());
  }
  result.dot = run_graph_pass(files, findings);
  run_stale_waiver_pass(files, findings);
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.path, a.line, a.rule, a.message) <
                     std::tie(b.path, b.line, b.rule, b.message);
            });

  if (!options.cache_path.empty()) {
    save_cache(options.cache_path, files, context_hash);
  }

  if (!options.baseline_path.empty()) {
    std::map<std::string, int> baseline = load_baseline(options.baseline_path);
    std::vector<Finding> kept;
    for (Finding& f : findings) {
      const auto it = baseline.find(baseline_key(f));
      if (it != baseline.end() && it->second > 0) {
        --it->second;
        ++result.baseline_suppressed;
      } else {
        kept.push_back(std::move(f));
      }
    }
    findings = std::move(kept);
  }
  result.findings = std::move(findings);
  return result;
}

int run_cli(const std::vector<std::string>& args) {
  Options options;
  options.jobs = util::ThreadPool::default_threads();
  std::vector<std::string> roots;
  std::string self_test_dir;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    const auto need_value = [&]() -> const std::string* {
      return i + 1 < args.size() ? &args[++i] : nullptr;
    };
    if (a == "--self-test") {
      const std::string* v = need_value();
      if (v == nullptr) return usage();
      self_test_dir = *v;
    } else if (a == "--jobs") {
      const std::string* v = need_value();
      if (v == nullptr) return usage();
      options.jobs = std::max(1, std::atoi(v->c_str()));
    } else if (a == "--format") {
      const std::string* v = need_value();
      if (v == nullptr || (*v != "text" && *v != "json")) return usage();
      options.json = *v == "json";
    } else if (a == "--baseline") {
      const std::string* v = need_value();
      if (v == nullptr) return usage();
      options.baseline_path = *v;
    } else if (a == "--write-baseline") {
      const std::string* v = need_value();
      if (v == nullptr) return usage();
      options.write_baseline = *v;
    } else if (a == "--dot") {
      const std::string* v = need_value();
      if (v == nullptr) return usage();
      options.dot_path = *v;
    } else if (a == "--cache") {
      const std::string* v = need_value();
      if (v == nullptr) return usage();
      options.cache_path = *v;
    } else if (!a.empty() && a[0] == '-') {
      return usage();
    } else {
      roots.push_back(a);
    }
  }
  if (!self_test_dir.empty()) return self_test(self_test_dir);
  if (roots.empty()) return usage();

  const std::vector<std::string> paths = collect_paths(roots);
  std::vector<SourceDoc> docs;
  docs.reserve(paths.size());
  for (const std::string& path : paths) {
    std::optional<std::string> content = read_file(path);
    if (!content) {
      std::fprintf(stderr, "gorilla-lint: cannot read %s\n", path.c_str());
      return 2;
    }
    docs.push_back(SourceDoc{path, std::move(*content)});
  }

  // Tool timing, not simulation state — reported so check.sh and bench.sh
  // can track lint wall time.
  using Clock = std::chrono::steady_clock;  // NOLINT(wall-clock)
  const Clock::time_point t0 = Clock::now();
  AnalysisResult result = analyze(std::move(docs), options);
  const double ms =
      std::chrono::duration<double, std::milli>(Clock::now() - t0).count();

  if (!options.dot_path.empty()) {
    // Regenerable artifact; see the cache writer note.
    std::ofstream out(options.dot_path,  // NOLINT(raw-ofstream)
                      std::ios::trunc);
    out << result.dot;
  }
  if (!options.write_baseline.empty()) {
    std::ofstream out(options.write_baseline,  // NOLINT(raw-ofstream)
                      std::ios::trunc);
    out << "# gorilla-lint baseline: rule<TAB>path<TAB>snippet\n";
    for (const Finding& f : result.findings) out << baseline_key(f) << "\n";
    std::fprintf(stderr, "gorilla-lint: wrote %zu baseline entries to %s\n",
                 result.findings.size(), options.write_baseline.c_str());
    return 0;
  }

  print_findings(result, options.json);
  std::fprintf(stderr,
               "gorilla-lint: %zu finding%s in %zu files, %.1f ms "
               "(jobs=%d, cache hits %zu, baseline-suppressed %zu)\n",
               result.findings.size(),
               result.findings.size() == 1 ? "" : "s", result.file_count, ms,
               options.jobs, result.cache_hits, result.baseline_suppressed);
  return result.findings.empty() ? 0 : 1;
}

}  // namespace gorilla::lint
