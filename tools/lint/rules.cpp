// gorilla-lint v2 — single-file rules.
//
// Every rule here sees one file at a time: the lexer-accurate scrubbed
// text (comments and literals blanked, numbers and code intact) for the
// pattern rules, and the token stream where token identity matters
// (float-eq). Cross-file passes (layer graph, stale-waiver) live in
// graph.cpp; unordered-iter is per-file but consumes the global
// container-name set the driver collects.
#include <algorithm>
#include <cctype>
#include <regex>
#include <string>
#include <vector>

#include "tools/lint/internal.h"

namespace gorilla::lint {

namespace {

bool path_contains(const std::string& path, const std::string& needle) {
  return path.find(needle) != std::string::npos;
}

std::string trimmed(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return std::string(s.substr(b, e - b));
}

/// Waiver-aware finding collector for one file.
class Sink {
 public:
  explicit Sink(SourceFile& f) : f_(f) {}

  /// Records a finding at `line` unless a `NOLINT(<rule>)` waiver covers
  /// it (in which case the waiver is marked used).
  void add(std::size_t line, const std::string& rule,
           const std::string& message) {
    if (consume_waiver(line, rule)) return;
    f_.results.findings.push_back(Finding{
        f_.path, line, rule, message, trimmed(f_.lex.line_text(line))});
  }

  /// True (and marks usage) when a waiver for `rule` sits on `line`.
  bool consume_waiver(std::size_t line, const std::string& rule) {
    const auto it = f_.summary.waivers.find(line);
    if (it == f_.summary.waivers.end() || it->second.count(rule) == 0) {
      return false;
    }
    f_.results.used_waivers.insert({line, rule});
    return true;
  }

 private:
  SourceFile& f_;
};

void add_regex_findings(SourceFile& f, Sink& sink, const std::regex& re,
                        const std::string& rule, const std::string& message) {
  const std::string& s = f.scrubbed;
  for (auto it = std::sregex_iterator(s.begin(), s.end(), re);
       it != std::sregex_iterator(); ++it) {
    sink.add(f.lex.line_of(static_cast<std::size_t>(it->position())), rule,
             message + ": '" + it->str() + "'");
  }
}

// --- rule: raw-decode ------------------------------------------------------

void rule_raw_decode(SourceFile& f, Sink& sink) {
  if (path_contains(f.path, "util/bytes.h") ||
      path_contains(f.path, "util/bytes.cpp")) {
    return;  // the one sanctioned home of byte<->integer conversion
  }
  static const std::regex memcpy_re(R"(\bmem(cpy|move)\s*\()");
  static const std::regex reinterpret_re(R"(\breinterpret_cast\b)");
  static const std::regex shift_re(R"(\]\s*(<<|>>)\s*[0-9])");
  add_regex_findings(f, sink, memcpy_re, "raw-decode",
                     "raw byte copy; use util::ByteReader/ByteWriter");
  add_regex_findings(f, sink, reinterpret_re, "raw-decode",
                     "reinterpret_cast; byte<->char bridging lives in "
                     "util/bytes.cpp (read_exact/write_all)");
  add_regex_findings(f, sink, shift_re, "raw-decode",
                     "shift-combine on a subscript; use util::load_* or "
                     "util::ByteReader");
}

// --- rule: codec-escape ----------------------------------------------------

/// Raw pointer-walk decode loops — a byte-pointer cursor plus `*p++`
/// dereference-advance — reimplement what the sanctioned codec layer
/// (util/bytes, util/columnar, util/block_codec) already does with bounds
/// checks, sticky failure, and CRC framing. Everyone else goes through
/// ColumnReader / ByteReader / the block codec.
void rule_codec_escape(SourceFile& f, Sink& sink) {
  if (path_contains(f.path, "util/bytes.h") ||
      path_contains(f.path, "util/bytes.cpp") ||
      path_contains(f.path, "util/columnar.h") ||
      path_contains(f.path, "util/columnar.cpp") ||
      path_contains(f.path, "util/block_codec.h") ||
      path_contains(f.path, "util/block_codec.cpp")) {
    return;  // the codec layer itself
  }
  static const std::regex walk_re(R"(\*\s*[A-Za-z_][A-Za-z0-9_]*\s*\+\+)");
  static const std::regex cursor_re(
      R"(\b(?:std::)?uint8_t\s*(?:const\s*)?\*\s*(?:const\s*)?[A-Za-z_][A-Za-z0-9_]*\s*=)");
  add_regex_findings(f, sink, walk_re, "codec-escape",
                     "dereference-advance pointer walk; decode through "
                     "util::ColumnReader/ByteReader or util/block_codec");
  add_regex_findings(f, sink, cursor_re, "codec-escape",
                     "byte-pointer decode cursor; spans + util::ByteReader "
                     "replace raw cursor arithmetic");
}

// --- rule: wall-clock ------------------------------------------------------

void rule_wall_clock(SourceFile& f, Sink& sink) {
  static const std::regex clock_re(
      R"(\b(system_clock|steady_clock|high_resolution_clock|random_device|gettimeofday|localtime|gmtime)\b)");
  static const std::regex rand_re(R"(\b(std::)?s?rand\s*\()");
  static const std::regex time_re(R"(\btime\s*\(\s*(NULL|nullptr|0)\s*\))");
  add_regex_findings(f, sink, clock_re, "wall-clock",
                     "wall-clock / ambient randomness; simulations take "
                     "SimTime and seeded Rng");
  add_regex_findings(f, sink, rand_re, "wall-clock",
                     "C PRNG; use the seeded util Rng");
  add_regex_findings(f, sink, time_re, "wall-clock",
                     "wall-clock read; simulations take SimTime");
}

// --- rule: float-eq (token-accurate) ---------------------------------------

/// ==/!= against a floating-point literal. Runs on the token stream, so
/// suffixed (1.0F), exponent-only (1e9), negated (-0.5), and
/// digit-separated (2'000.5) literals are all caught, while hex integers
/// like 0x1e stay integers.
void rule_float_eq(SourceFile& f, Sink& sink) {
  const auto& toks = f.lex.tokens;
  std::vector<std::size_t> code;  // indices of non-comment tokens
  code.reserve(toks.size());
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != TokenKind::kComment) code.push_back(i);
  }
  const auto is_punct = [&](std::size_t ci, char c) {
    const Token& t = toks[code[ci]];
    return t.kind == TokenKind::kPunct && f.lex.text[t.offset] == c;
  };
  // ==/!= arrive as two adjacent single-char punct tokens.
  const auto is_eq_op = [&](std::size_t ci) {
    if (ci + 1 >= code.size()) return false;
    if (!(is_punct(ci, '=') || is_punct(ci, '!')) || !is_punct(ci + 1, '='))
      return false;
    return toks[code[ci + 1]].offset == toks[code[ci]].offset + 1;
  };
  const auto is_float = [&](std::size_t ci) {
    const Token& t = toks[code[ci]];
    return t.kind == TokenKind::kNumber && is_float_literal(f.lex.view(t));
  };
  const char* const msg =
      "exact floating-point equality; compare against an epsilon or "
      "restructure";
  for (std::size_t ci = 0; ci + 1 < code.size(); ++ci) {
    if (!is_eq_op(ci)) continue;
    const std::size_t op_line = f.lex.line_of(toks[code[ci]].offset);
    // literal == / literal !=  (left side)
    if (ci > 0 && is_float(ci - 1)) {
      sink.add(op_line, "float-eq",
               std::string(msg) + ": '" +
                   std::string(f.lex.view(toks[code[ci - 1]])) + " =='");
      continue;
    }
    // == literal, == -literal, != +literal  (right side)
    std::size_t rhs = ci + 2;
    if (rhs < code.size() && (is_punct(rhs, '-') || is_punct(rhs, '+'))) ++rhs;
    if (rhs < code.size() && is_float(rhs)) {
      sink.add(op_line, "float-eq",
               std::string(msg) + ": '== " +
                   std::string(f.lex.view(toks[code[rhs]])) + "'");
    }
  }
}

// --- rule: parse-optional --------------------------------------------------

void rule_parse_optional(SourceFile& f, Sink& sink) {
  const std::string& s = f.scrubbed;
  static const std::regex name_re(R"(\bparse_[A-Za-z0-9_]+\s*\()");
  for (auto it = std::sregex_iterator(s.begin(), s.end(), name_re);
       it != std::sregex_iterator(); ++it) {
    const std::size_t at = static_cast<std::size_t>(it->position());
    // Statement prefix: everything back to the previous ; { } or #.
    std::size_t start = at;
    while (start > 0 && s[start - 1] != ';' && s[start - 1] != '{' &&
           s[start - 1] != '}' && s[start - 1] != '#') {
      --start;
    }
    std::string prefix = s.substr(start, at - start);
    while (!prefix.empty() &&
           std::isspace(static_cast<unsigned char>(prefix.back()))) {
      prefix.pop_back();
    }
    if (prefix.find("optional") != std::string::npos) continue;  // compliant
    // A call site, not a declaration: operator or keyword before the name.
    if (prefix.empty()) continue;
    const char last = prefix.back();
    if (std::string("=(,!<>|&+-*/?:").find(last) != std::string::npos) continue;
    if (prefix.find("return") != std::string::npos ||
        prefix.find("throw") != std::string::npos ||
        prefix.find("co_return") != std::string::npos) {
      continue;
    }
    sink.add(f.lex.line_of(at), "parse-optional",
             "parse_* must signal failure via std::optional (truncated or "
             "malformed input is not a value)");
  }
}

// --- rule: unordered-iter --------------------------------------------------

void rule_unordered_iter(SourceFile& f, Sink& sink,
                         const std::set<std::string>& names) {
  if (path_contains(f.path, "util/")) return;  // util::sorted_* lives here
  const std::string& s = f.scrubbed;
  static const std::regex for_re(R"(\bfor\s*\()");
  for (auto it = std::sregex_iterator(s.begin(), s.end(), for_re);
       it != std::sregex_iterator(); ++it) {
    // Find the ':' of a range-for at parenthesis depth 1 (ignoring '::').
    std::size_t i = static_cast<std::size_t>(it->position() + it->length());
    int depth = 1;
    std::size_t colon = std::string::npos;
    std::size_t close = std::string::npos;
    for (; i < s.size() && depth > 0; ++i) {
      const char c = s[i];
      if (c == '(') ++depth;
      if (c == ')' && --depth == 0) close = i;
      if (c == ';') break;  // classic for loop, not a range-for
      if (c == ':' && depth == 1) {
        if ((i > 0 && s[i - 1] == ':') ||
            (i + 1 < s.size() && s[i + 1] == ':')) {
          continue;  // '::' qualifier
        }
        if (colon == std::string::npos) colon = i;
      }
    }
    if (colon == std::string::npos || close == std::string::npos) continue;
    const std::string range = s.substr(colon + 1, close - colon - 1);
    if (range.find("sorted_keys") != std::string::npos ||
        range.find("sorted_items") != std::string::npos ||
        range.find("sorted_values") != std::string::npos) {
      continue;  // sanctioned deterministic wrappers (util/det.h)
    }
    for (const auto& name : names) {
      static const std::string word_chars =
          "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_";
      std::size_t at = range.find(name);
      bool whole_word = false;
      while (at != std::string::npos && !whole_word) {
        const bool left_ok =
            at == 0 || word_chars.find(range[at - 1]) == std::string::npos;
        const std::size_t end = at + name.size();
        const bool right_ok = end >= range.size() ||
                              word_chars.find(range[end]) == std::string::npos;
        whole_word = left_ok && right_ok;
        at = range.find(name, at + 1);
      }
      if (!whole_word) continue;
      const std::size_t for_line =
          f.lex.line_of(static_cast<std::size_t>(it->position()));
      const std::size_t range_line = f.lex.line_of(colon + 1);
      if (sink.consume_waiver(for_line, "unordered-iter") ||
          sink.consume_waiver(range_line, "unordered-iter")) {
        break;
      }
      sink.add(for_line, "unordered-iter",
               "range-for over unordered container '" + name +
                   "'; iterate util::sorted_keys/sorted_items or prove the "
                   "fold order-independent and carry an unordered-iter "
                   "waiver");
      break;  // one finding per loop
    }
  }
}

// --- rule: raw-ofstream ----------------------------------------------------

void rule_raw_ofstream(SourceFile& f, Sink& sink) {
  if (path_contains(f.path, "util/columnar.cpp") ||
      path_contains(f.path, "util/bytes.cpp")) {
    return;  // the sanctioned artifact-write path
  }
  static const std::regex ofstream_re(R"(\b(basic_)?ofstream\b)");
  add_regex_findings(f, sink, ofstream_re, "raw-ofstream",
                     "raw std::ofstream; durable writes go through "
                     "util::ColumnArchive::save_file / util::write_all "
                     "(atomic rename + fsync + fault-injection seam), or "
                     "carry a justified raw-ofstream waiver");
}

// --- worker-lambda rules ---------------------------------------------------
//
// worker-capture, shard-mutation, and shared-rng all inspect the first
// lambda handed to ShardedExecutor::run_ordered/parallel_for or
// ThreadPool::submit — the one that runs on pool threads. The sanctioned
// merge path is run_ordered's consume callback, which runs on the calling
// thread and is not inspected.

struct WorkerLambda {
  std::size_t intro = 0;        ///< offset of '['
  std::vector<std::string> ref_captures;  ///< names captured by reference
  bool blanket_ref = false;     ///< [&] or [&, ...]
  std::size_t body_begin = 0;   ///< offset just past '{' (0 = none found)
  std::size_t body_end = 0;     ///< offset of matching '}'
};

/// Finds the worker lambda of the call whose name ends at `after_name`.
/// Walks to the first lambda-introducer '[' (one preceded, spaces aside,
/// by '(' ',' '{' or '='; a subscript follows an identifier or a closing
/// bracket instead). Stops at the first ';' — past the end of the
/// statement, and before any body lambda in a declaration of
/// run_ordered/parallel_for themselves.
bool find_worker_lambda(const std::string& s, std::size_t after_name,
                        WorkerLambda& out) {
  for (std::size_t i = after_name; i < s.size() && s[i] != ';'; ++i) {
    if (s[i] != '[') continue;
    std::size_t j = i;
    while (j > 0 && std::isspace(static_cast<unsigned char>(s[j - 1]))) --j;
    const char prev = j > 0 ? s[j - 1] : '\0';
    if (prev != '(' && prev != ',' && prev != '{' && prev != '=') return false;
    const std::size_t close = s.find(']', i);
    if (close == std::string::npos) return false;
    out.intro = i;
    // Split the capture list on top-level commas.
    std::string item;
    int depth = 0;
    const auto flush = [&out, &item] {
      std::string t;
      for (const char c : item) {
        if (!std::isspace(static_cast<unsigned char>(c))) t.push_back(c);
      }
      item.clear();
      if (t.empty()) return;
      if (t == "&") {
        out.blanket_ref = true;
        return;
      }
      if (t[0] != '&') return;  // by value, this, =, *this
      std::string name;
      for (std::size_t k = 1; k < t.size(); ++k) {
        if (std::isalnum(static_cast<unsigned char>(t[k])) || t[k] == '_') {
          name.push_back(t[k]);
        } else {
          break;  // init-capture `&x = expr`: the new name is x
        }
      }
      if (!name.empty()) out.ref_captures.push_back(name);
    };
    for (std::size_t k = i + 1; k < close; ++k) {
      const char c = s[k];
      if (c == '(' || c == '{' || c == '<') ++depth;
      if (c == ')' || c == '}' || c == '>') --depth;
      if (c == ',' && depth == 0) {
        flush();
      } else {
        item.push_back(c);
      }
    }
    flush();
    // Locate the body: first '{' after ']' before a ';' (skips the
    // parameter list and specifiers), then its matching '}'.
    std::size_t b = close + 1;
    int pdepth = 0;
    for (; b < s.size(); ++b) {
      if (s[b] == '(') ++pdepth;
      if (s[b] == ')') --pdepth;
      if (s[b] == ';' && pdepth == 0) return true;  // no body (declaration?)
      if (s[b] == '{' && pdepth == 0) break;
    }
    if (b >= s.size()) return true;
    int bdepth = 1;
    std::size_t e = b + 1;
    for (; e < s.size() && bdepth > 0; ++e) {
      if (s[e] == '{') ++bdepth;
      if (s[e] == '}') --bdepth;
    }
    out.body_begin = b + 1;
    out.body_end = e > b ? e - 1 : b + 1;
    return true;
  }
  return false;
}

/// Names declared in this file with one of the given (unqualified) type
/// names — token scan for `Type [&] name`, which covers `study::EventBuffer
/// buf;`, `util::Rng& rng`, and parameter lists.
std::set<std::string> names_with_declared_type(
    const SourceFile& f, const std::set<std::string>& type_names) {
  std::set<std::string> out;
  const auto& toks = f.lex.tokens;
  std::vector<std::size_t> code;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != TokenKind::kComment) code.push_back(i);
  }
  for (std::size_t ci = 0; ci + 1 < code.size(); ++ci) {
    const Token& t = toks[code[ci]];
    if (t.kind != TokenKind::kIdentifier) continue;
    if (type_names.count(std::string(f.lex.view(t))) == 0) continue;
    std::size_t nj = ci + 1;
    const Token* amp = &toks[code[nj]];
    if (amp->kind == TokenKind::kPunct &&
        (f.lex.text[amp->offset] == '&' || f.lex.text[amp->offset] == '*')) {
      ++nj;
    }
    if (nj >= code.size()) continue;
    const Token& name = toks[code[nj]];
    if (name.kind == TokenKind::kIdentifier) {
      out.insert(std::string(f.lex.view(name)));
    }
  }
  return out;
}

const std::regex& worker_call_re() {
  static const std::regex re(R"(\b(run_ordered|parallel_for|submit)\b)");
  return re;
}

void rule_worker_capture(SourceFile& f, Sink& sink) {
  const std::string& s = f.scrubbed;
  for (auto it = std::sregex_iterator(s.begin(), s.end(), worker_call_re());
       it != std::sregex_iterator(); ++it) {
    WorkerLambda wl;
    if (!find_worker_lambda(
            s, static_cast<std::size_t>(it->position() + it->length()), wl)) {
      continue;
    }
    if (!wl.blanket_ref) continue;
    sink.add(f.lex.line_of(wl.intro), "worker-capture",
             "blanket [&] capture on a worker lambda; spell out every "
             "capture so shard-disjoint mutation (DESIGN.md §3d rule 2) is "
             "checkable at the call site");
  }
}

/// shard-mutation: a write through a by-reference capture inside a worker
/// lambda, where the captured variable is not one of the sanctioned
/// shard-result types. Workers must buffer their output (EventBuffer,
/// MonitorDelta, DayShardResult) and hand it to the calling thread; any
/// other shared write is a determinism race waiting for a second job.
void rule_shard_mutation(SourceFile& f, Sink& sink) {
  static const std::set<std::string> kSanctioned = {
      "EventBuffer", "MonitorDelta", "DayShardResult"};
  const std::set<std::string> sanctioned_names =
      names_with_declared_type(f, kSanctioned);
  static const char* const kMutators =
      "push_back|pop_back|emplace_back|emplace|insert|erase|clear|resize|"
      "reserve|assign|append|merge|swap|observe|store|reset";
  const std::string& s = f.scrubbed;
  for (auto it = std::sregex_iterator(s.begin(), s.end(), worker_call_re());
       it != std::sregex_iterator(); ++it) {
    WorkerLambda wl;
    if (!find_worker_lambda(
            s, static_cast<std::size_t>(it->position() + it->length()), wl) ||
        wl.body_begin == 0) {
      continue;
    }
    const std::string body =
        s.substr(wl.body_begin, wl.body_end - wl.body_begin);
    for (const auto& name : wl.ref_captures) {
      if (sanctioned_names.count(name) != 0) continue;
      // Writes through the captured name: assignment (plain or compound),
      // mutating member calls, subscript assignment, increment/decrement.
      const std::regex write_re(
          "(\\b" + name +
          R"(\s*(\[[^\]]*\]\s*)?([+\-*/%|&^]?=[^=]|<<=|>>=))" + "|\\b" + name +
          R"(\s*\.\s*()" + kMutators + R"()\s*\()" + "|(\\+\\+|--)\\s*\\b" +
          name + "\\b|\\b" + name + R"(\s*(\+\+|--)))");
      for (auto wit = std::sregex_iterator(body.begin(), body.end(), write_re);
           wit != std::sregex_iterator(); ++wit) {
        sink.add(
            f.lex.line_of(wl.body_begin +
                          static_cast<std::size_t>(wit->position())),
            "shard-mutation",
            "worker lambda writes through by-reference capture '" + name +
                "'; shard output must be buffered in EventBuffer/"
                "MonitorDelta/DayShardResult and merged on the calling "
                "thread (DESIGN.md §3d rule 2)");
      }
    }
  }
}

/// shared-rng: a worker lambda calling anything but substream() on a
/// by-reference-captured util::Rng. A shared stream drawn from worker
/// threads makes the draw order depend on scheduling; per-shard substreams
/// (Rng::substream(seed, tag)) are the sanctioned derivation.
void rule_shared_rng(SourceFile& f, Sink& sink) {
  static const std::set<std::string> kRngTypes = {"Rng"};
  const std::set<std::string> rng_names =
      names_with_declared_type(f, kRngTypes);
  if (rng_names.empty()) return;
  const std::string& s = f.scrubbed;
  for (auto it = std::sregex_iterator(s.begin(), s.end(), worker_call_re());
       it != std::sregex_iterator(); ++it) {
    WorkerLambda wl;
    if (!find_worker_lambda(
            s, static_cast<std::size_t>(it->position() + it->length()), wl) ||
        wl.body_begin == 0) {
      continue;
    }
    const std::string body =
        s.substr(wl.body_begin, wl.body_end - wl.body_begin);
    for (const auto& name : wl.ref_captures) {
      if (rng_names.count(name) == 0) continue;
      const std::regex call_re("\\b" + name +
                               R"(\s*\.\s*([A-Za-z_][A-Za-z0-9_]*)\s*\()");
      for (auto cit = std::sregex_iterator(body.begin(), body.end(), call_re);
           cit != std::sregex_iterator(); ++cit) {
        if ((*cit)[1].str() == "substream") continue;
        sink.add(
            f.lex.line_of(wl.body_begin +
                          static_cast<std::size_t>(cit->position())),
            "shared-rng",
            "worker lambda draws from shared Rng '" + name + "' (." +
                (*cit)[1].str() +
                "); derive a per-shard stream with Rng::substream(seed, tag) "
                "instead (DESIGN.md §3d rule 1)");
      }
    }
  }
}

// --- rule: heavy-node-container --------------------------------------------

/// Node-based std containers inside a struct/class marked `// LINT-COMPACT`.
/// The mark documents a flat-storage contract (DESIGN.md §3g): the type is
/// instantiated at population scale, so per-element heap nodes — maps,
/// sets, lists — would silently undo the memory spine. Members must be
/// flat (arrays, vectors, open-addressing indices, intrusive links).
void rule_heavy_node_container(SourceFile& f, Sink& sink) {
  if (f.summary.directives.compact_marks.empty()) return;
  static const std::regex node_container_re(
      R"(\b(multimap|multiset|unordered_map|unordered_set|unordered_multimap|unordered_multiset|forward_list|map|set|list)\s*<)");
  const std::string& s = f.scrubbed;
  for (const std::size_t mark_line : f.summary.directives.compact_marks) {
    if (mark_line == 0 || mark_line > f.lex.line_starts.size()) continue;
    // The mark sits on (or just above) the `struct X {` line: take the
    // first '{' at or after the marked line and lint its balanced body.
    const std::size_t from = f.lex.line_starts[mark_line - 1];
    const std::size_t open = s.find('{', from);
    if (open == std::string::npos) continue;
    int depth = 1;
    std::size_t close = open + 1;
    for (; close < s.size() && depth > 0; ++close) {
      if (s[close] == '{') ++depth;
      if (s[close] == '}') --depth;
    }
    const std::string body = s.substr(open + 1, close - open - 1);
    for (auto it =
             std::sregex_iterator(body.begin(), body.end(), node_container_re);
         it != std::sregex_iterator(); ++it) {
      sink.add(f.lex.line_of(open + 1 + static_cast<std::size_t>(
                                            it->position())),
               "heavy-node-container",
               "node-based std::" + (*it)[1].str() +
                   " inside a LINT-COMPACT type; compact types hold flat "
                   "storage (slabs, vectors, open addressing, intrusive "
                   "links — DESIGN.md §3g)");
    }
  }
}

// --- summary collection ----------------------------------------------------

/// Names of variables declared with an unordered container type; members
/// are declared in headers and iterated in .cpp files, so the driver pools
/// these across every scanned file.
std::vector<std::string> collect_unordered_names(const SourceFile& f) {
  std::set<std::string> names;
  const std::string& s = f.scrubbed;
  for (std::size_t pos = 0;;) {
    const std::size_t hit =
        std::min(s.find("unordered_map", pos), s.find("unordered_set", pos));
    if (hit == std::string::npos) break;
    std::size_t i = hit + std::string("unordered_map").size();
    pos = i;
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    if (i >= s.size() || s[i] != '<') continue;
    int depth = 0;
    for (; i < s.size(); ++i) {  // walk the balanced template argument list
      if (s[i] == '<') ++depth;
      if (s[i] == '>' && --depth == 0) {
        ++i;
        break;
      }
    }
    while (i < s.size() &&
           (std::isspace(static_cast<unsigned char>(s[i])) || s[i] == '&')) {
      ++i;
    }
    std::string name;
    while (i < s.size() &&
           (std::isalnum(static_cast<unsigned char>(s[i])) || s[i] == '_')) {
      name.push_back(s[i++]);
    }
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    // A declaration introduces the name and then initializes, terminates,
    // or (for a parameter) closes the list.
    if (!name.empty() && i < s.size() &&
        (s[i] == ';' || s[i] == '=' || s[i] == '{' || s[i] == '(' ||
         s[i] == ',' || s[i] == ')')) {
      names.insert(name);
    }
  }
  return {names.begin(), names.end()};
}

}  // namespace

void ensure_lexed(SourceFile& f) {
  if (f.lexed) return;
  f.lex = lex(f.raw);
  f.scrubbed = scrub(f.lex);
  f.lexed = true;
}

void build_summary(SourceFile& f) {
  ensure_lexed(f);
  f.summary = FileSummary{};
  // Waivers and directives live in comments only — a NOLINT inside a
  // string literal is data, not a waiver (v1 collected those too).
  static const std::regex nolint_re(R"(NOLINT\(([a-z][a-z0-9-]*)\))");
  static const std::regex layer_re(R"(LINT-LAYER:\s*([a-z][a-z0-9_]*))");
  static const std::regex expect_re(R"(LINT-EXPECT\[([a-z][a-z0-9-]*)\])");
  // End-anchored: the mark is a trailing `// LINT-COMPACT` comment, so a
  // prose mention mid-sentence (e.g. in this tool's own docs) is not a mark.
  static const std::regex compact_re(R"(LINT-COMPACT\s*(\*/)?\s*$)");
  for (const Token& t : f.lex.tokens) {
    if (t.kind != TokenKind::kComment) continue;
    const std::string text(f.lex.view(t));
    const auto line_at = [&](std::size_t pos) {
      return f.lex.line_of(t.offset + pos);
    };
    for (auto it = std::sregex_iterator(text.begin(), text.end(), nolint_re);
         it != std::sregex_iterator(); ++it) {
      f.summary.waivers[line_at(static_cast<std::size_t>(it->position()))]
          .insert((*it)[1].str());
    }
    std::smatch m;
    if (std::regex_search(text, m, layer_re)) {
      f.summary.directives.layer = m[1].str();
    }
    for (auto it = std::sregex_iterator(text.begin(), text.end(), expect_re);
         it != std::sregex_iterator(); ++it) {
      f.summary.directives.expects.push_back(
          {line_at(static_cast<std::size_t>(it->position())),
           (*it)[1].str()});
    }
    for (auto it = std::sregex_iterator(text.begin(), text.end(), compact_re);
         it != std::sregex_iterator(); ++it) {
      f.summary.directives.compact_marks.push_back(
          line_at(static_cast<std::size_t>(it->position())));
    }
  }
  f.summary.includes = find_includes(f.lex, f.scrubbed);
  f.summary.unordered_names = collect_unordered_names(f);
}

void run_file_rules(SourceFile& f,
                    const std::set<std::string>& unordered_names) {
  ensure_lexed(f);
  f.results = FileResults{};
  Sink sink(f);
  rule_raw_decode(f, sink);
  rule_codec_escape(f, sink);
  rule_wall_clock(f, sink);
  rule_unordered_iter(f, sink, unordered_names);
  rule_float_eq(f, sink);
  rule_parse_optional(f, sink);
  rule_worker_capture(f, sink);
  rule_raw_ofstream(f, sink);
  rule_shard_mutation(f, sink);
  rule_shared_rng(f, sink);
  rule_heavy_node_container(f, sink);
}

}  // namespace gorilla::lint
