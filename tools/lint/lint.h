// gorilla-lint v2 — public interface of the analysis library.
//
// The analyzer is a multi-pass pipeline over a set of source documents:
//
//   1. per-file, context-free (parallel on util::ThreadPool, cacheable by
//      content hash): lex, scrub, collect waivers/directives/includes/
//      unordered-container names, and run every single-file rule.
//   2. cross-file: unordered-iter (needs the global container-name set),
//      the include-graph pass (layer-DAG ranks, file- and directory-level
//      cycle rejection, DOT artifact), and stale-waiver (a NOLINT that
//      suppressed nothing is itself a finding).
//   3. reporting: deterministic ordering, optional baseline subtraction,
//      text or JSON output.
//
// The library is filesystem-free at its core (analyze() takes in-memory
// documents) so the rules are unit-testable; run_cli() adds the directory
// walking, cache persistence, and `--self-test` harness.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace gorilla::lint {

struct Finding {
  std::string path;
  std::size_t line = 0;
  std::string rule;
  std::string message;
  std::string snippet;  ///< trimmed raw source line
};

struct SourceDoc {
  std::string path;     ///< display + layer-detection path (as given)
  std::string content;
};

struct Options {
  int jobs = 1;                 ///< worker threads; <=1 runs inline
  std::string baseline_path;    ///< if set, subtract known findings
  std::string write_baseline;   ///< if set, write current findings and exit 0
  std::string dot_path;         ///< if set, emit the include-graph artifact
  std::string cache_path;       ///< if set, per-file content-hash cache
  bool json = false;            ///< machine-readable findings on stdout
};

struct AnalysisResult {
  std::vector<Finding> findings;        ///< post-waiver, post-baseline
  std::size_t file_count = 0;
  std::size_t baseline_suppressed = 0;
  std::size_t cache_hits = 0;
  std::string dot;                      ///< include-graph DOT text
};

/// Analyzes in-memory documents. Deterministic for any `jobs` value.
[[nodiscard]] AnalysisResult analyze(std::vector<SourceDoc> docs,
                                     const Options& options);

/// Full command-line driver (tree walk, cache, baseline, self-test).
/// Returns the process exit code: 0 clean, 1 findings/self-test failure,
/// 2 usage error.
int run_cli(const std::vector<std::string>& args);

}  // namespace gorilla::lint
