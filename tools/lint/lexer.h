// A real C++ lexer for gorilla-lint (tools/lint).
//
// gorilla_lint v1 blanked comments and literals with a hand-rolled state
// machine that knew nothing about raw string literals or digit separators:
// `R"x(...)x"` bodies could leak into the "code" channel (false positives)
// and a `'` digit separator flipped the char-literal state and swallowed
// the rest of the line (false negatives). This lexer tokenizes the actual
// C++ lexical grammar the tree uses — line/block comments, encoding
// prefixes (u8/u/U/L, with and without R), raw string literals with
// delimiters, char literals, pp-numbers with digit separators and
// exponents — so every analysis pass shares one accurate view of what is
// code and what is not.
//
// Error tolerance: lexing never fails. Unterminated literals and comments
// extend to end of line (strings/chars) or end of file (block comments,
// raw strings), matching how a human reads broken code, and offsets always
// map back to lines.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace gorilla::lint {

enum class TokenKind {
  kIdentifier,   ///< identifiers and keywords
  kNumber,       ///< pp-number: 1'000'000, 0x800'1b, 1e9, 1.5f, 0x1p3
  kString,       ///< "..." including encoding prefixes
  kRawString,    ///< R"delim(...)delim" including encoding prefixes
  kCharLiteral,  ///< '...' including encoding prefixes
  kComment,      ///< // and /* */ comments, text included
  kPunct,        ///< a single punctuation character
};

struct Token {
  TokenKind kind = TokenKind::kPunct;
  std::size_t offset = 0;  ///< byte offset into the source text
  std::size_t length = 0;
};

/// A lexed translation unit: the raw text, its token stream, and the
/// line-start offsets every pass uses to map findings to line numbers.
struct LexedSource {
  std::string text;
  std::vector<Token> tokens;
  std::vector<std::size_t> line_starts;  ///< offset of each line, 0-based elem

  /// 1-based line containing `offset`.
  [[nodiscard]] std::size_t line_of(std::size_t offset) const;

  [[nodiscard]] std::string_view view(const Token& t) const {
    return std::string_view(text).substr(t.offset, t.length);
  }

  /// Raw text of the 1-based line, without the trailing newline.
  [[nodiscard]] std::string_view line_text(std::size_t line) const;
};

/// Tokenizes `text`. Never fails; see the error-tolerance note above.
[[nodiscard]] LexedSource lex(std::string text);

/// The scrubbed view the regex-level rules run on: comments and
/// string/char literal tokens are blanked with spaces (newlines inside
/// them preserved, so offsets still map to the same lines), everything
/// else — including numbers with digit separators — is byte-identical to
/// the source.
[[nodiscard]] std::string scrub(const LexedSource& src);

/// True if a kNumber token spells a floating-point literal (has a decimal
/// point, a decimal exponent, or a hex-float binary exponent). Digit
/// separators are ignored; `0x1e` is correctly an integer.
[[nodiscard]] bool is_float_literal(std::string_view number);

struct IncludeDirective {
  std::size_t line = 0;    ///< 1-based
  std::string target;      ///< path between the quotes/brackets
  bool angled = false;     ///< <...> rather than "..."
};

/// Extracts #include directives. Directive recognition uses the scrubbed
/// view (so commented-out includes are ignored) while the target path is
/// read from the raw text (the scrub blanks string bodies).
[[nodiscard]] std::vector<IncludeDirective> find_includes(
    const LexedSource& src, const std::string& scrubbed);

}  // namespace gorilla::lint
