#include "tools/lint/lexer.h"

#include <algorithm>
#include <cctype>

namespace gorilla::lint {

namespace {

bool is_ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool is_ident(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

bool is_digit(char c) { return c >= '0' && c <= '9'; }

/// Encoding prefixes that may precede a string or char literal.
bool is_encoding_prefix(std::string_view id) {
  return id == "u8" || id == "u" || id == "U" || id == "L";
}

class Lexer {
 public:
  explicit Lexer(std::string text) { src_.text = std::move(text); }

  LexedSource run() {
    const std::string& s = src_.text;
    src_.line_starts.push_back(0);
    for (std::size_t i = 0; i < s.size(); ++i) {
      if (s[i] == '\n') src_.line_starts.push_back(i + 1);
    }
    std::size_t i = 0;
    while (i < s.size()) {
      const char c = s[i];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++i;
        continue;
      }
      if (c == '/' && peek(i + 1) == '/') {
        i = lex_line_comment(i);
      } else if (c == '/' && peek(i + 1) == '*') {
        i = lex_block_comment(i);
      } else if (c == '"') {
        i = lex_string(i, i);
      } else if (c == '\'') {
        i = lex_char(i, i);
      } else if (is_digit(c) || (c == '.' && is_digit(peek(i + 1)))) {
        i = lex_number(i);
      } else if (is_ident_start(c)) {
        i = lex_identifier_or_prefixed_literal(i);
      } else {
        add(TokenKind::kPunct, i, 1);
        ++i;
      }
    }
    return std::move(src_);
  }

 private:
  [[nodiscard]] char peek(std::size_t i) const {
    return i < src_.text.size() ? src_.text[i] : '\0';
  }

  void add(TokenKind kind, std::size_t offset, std::size_t length) {
    src_.tokens.push_back(Token{kind, offset, length});
  }

  /// A `//` comment runs to the end of line; a trailing backslash splices
  /// the next physical line into it ([lex.phases] line splicing).
  std::size_t lex_line_comment(std::size_t start) {
    const std::string& s = src_.text;
    std::size_t i = start + 2;
    while (i < s.size()) {
      if (s[i] == '\n') {
        std::size_t back = i;
        while (back > start && s[back - 1] == '\r') --back;
        if (back > start && s[back - 1] == '\\') {
          ++i;  // spliced: the comment continues on the next line
          continue;
        }
        break;
      }
      ++i;
    }
    add(TokenKind::kComment, start, i - start);
    return i;
  }

  std::size_t lex_block_comment(std::size_t start) {
    const std::string& s = src_.text;
    std::size_t i = start + 2;
    while (i < s.size() && !(s[i] == '*' && peek(i + 1) == '/')) ++i;
    i = i < s.size() ? i + 2 : s.size();  // unterminated: to end of file
    add(TokenKind::kComment, start, i - start);
    return i;
  }

  /// `start` is the opening quote; `token_start` includes any prefix.
  /// Unterminated strings end at the newline (error tolerance).
  std::size_t lex_string(std::size_t start, std::size_t token_start) {
    const std::string& s = src_.text;
    std::size_t i = start + 1;
    while (i < s.size() && s[i] != '"' && s[i] != '\n') {
      if (s[i] == '\\' && i + 1 < s.size()) ++i;
      ++i;
    }
    if (i < s.size() && s[i] == '"') ++i;
    add(TokenKind::kString, token_start, i - token_start);
    return i;
  }

  std::size_t lex_char(std::size_t start, std::size_t token_start) {
    const std::string& s = src_.text;
    std::size_t i = start + 1;
    while (i < s.size() && s[i] != '\'' && s[i] != '\n') {
      if (s[i] == '\\' && i + 1 < s.size()) ++i;
      ++i;
    }
    if (i < s.size() && s[i] == '\'') ++i;
    add(TokenKind::kCharLiteral, token_start, i - token_start);
    return i;
  }

  /// `start` is the opening quote of R"delim( ... )delim".
  /// Unterminated raw strings run to end of file.
  std::size_t lex_raw_string(std::size_t start, std::size_t token_start) {
    const std::string& s = src_.text;
    std::size_t i = start + 1;
    std::string delim;
    while (i < s.size() && s[i] != '(' && s[i] != '\n' &&
           delim.size() < 16) {
      delim.push_back(s[i++]);
    }
    if (i >= s.size() || s[i] != '(') {
      // Malformed opener; treat as an ordinary string from the quote.
      return lex_string(start, token_start);
    }
    ++i;  // past '('
    const std::string closer = ")" + delim + "\"";
    const std::size_t end = s.find(closer, i);
    i = end == std::string::npos ? s.size() : end + closer.size();
    add(TokenKind::kRawString, token_start, i - token_start);
    return i;
  }

  /// pp-number: digits, identifier characters, '.', digit separators
  /// (a `'` followed by an alphanumeric), and exponent signs after
  /// [eEpP]. Covers 1'000'000, 0x800'1b, 1e-9, 1.5f, 0x1.8p3.
  std::size_t lex_number(std::size_t start) {
    const std::string& s = src_.text;
    std::size_t i = start + 1;
    while (i < s.size()) {
      const char c = s[i];
      if (is_ident(c) || c == '.') {
        ++i;
      } else if (c == '\'' && i + 1 < s.size() && is_ident(s[i + 1])) {
        i += 2;  // digit separator
      } else if ((c == '+' || c == '-') &&
                 (s[i - 1] == 'e' || s[i - 1] == 'E' || s[i - 1] == 'p' ||
                  s[i - 1] == 'P')) {
        ++i;
      } else {
        break;
      }
    }
    add(TokenKind::kNumber, start, i - start);
    return i;
  }

  std::size_t lex_identifier_or_prefixed_literal(std::size_t start) {
    const std::string& s = src_.text;
    std::size_t i = start + 1;
    while (i < s.size() && is_ident(s[i])) ++i;
    const std::string_view id(s.data() + start, i - start);
    if (i < s.size()) {
      const bool raw = id == "R" || (id.size() >= 2 && id.back() == 'R' &&
                                     is_encoding_prefix(id.substr(0, id.size() - 1)));
      if (s[i] == '"' && raw) return lex_raw_string(i, start);
      if (s[i] == '"' && is_encoding_prefix(id)) return lex_string(i, start);
      if (s[i] == '\'' && is_encoding_prefix(id)) return lex_char(i, start);
    }
    add(TokenKind::kIdentifier, start, i - start);
    return i;
  }

  LexedSource src_;
};

}  // namespace

std::size_t LexedSource::line_of(std::size_t offset) const {
  const auto it =
      std::upper_bound(line_starts.begin(), line_starts.end(), offset);
  return static_cast<std::size_t>(it - line_starts.begin());
}

std::string_view LexedSource::line_text(std::size_t line) const {
  if (line == 0 || line > line_starts.size()) return {};
  const std::size_t begin = line_starts[line - 1];
  std::size_t end = line < line_starts.size() ? line_starts[line] : text.size();
  while (end > begin && (text[end - 1] == '\n' || text[end - 1] == '\r')) --end;
  return std::string_view(text).substr(begin, end - begin);
}

LexedSource lex(std::string text) { return Lexer(std::move(text)).run(); }

std::string scrub(const LexedSource& src) {
  std::string out = src.text;
  for (const Token& t : src.tokens) {
    if (t.kind != TokenKind::kComment && t.kind != TokenKind::kString &&
        t.kind != TokenKind::kRawString && t.kind != TokenKind::kCharLiteral) {
      continue;
    }
    for (std::size_t i = t.offset; i < t.offset + t.length; ++i) {
      if (out[i] != '\n') out[i] = ' ';
    }
  }
  return out;
}

bool is_float_literal(std::string_view number) {
  std::string digits;
  digits.reserve(number.size());
  for (const char c : number) {
    if (c != '\'') digits.push_back(c);
  }
  if (digits.size() >= 2 && digits[0] == '0' &&
      (digits[1] == 'x' || digits[1] == 'X')) {
    // Hex: floating only with a binary exponent (0x1.8p3); 0x1e is an int.
    return digits.find('p') != std::string::npos ||
           digits.find('P') != std::string::npos;
  }
  if (digits.find('.') != std::string::npos) return true;
  // Decimal exponent: 1e9, 3E-2. The char after e/E must begin an exponent.
  for (std::size_t i = 1; i < digits.size(); ++i) {
    if ((digits[i] == 'e' || digits[i] == 'E') && i + 1 < digits.size()) {
      const char n = digits[i + 1];
      if (is_digit(n) || n == '+' || n == '-') return true;
    }
  }
  return false;
}

std::vector<IncludeDirective> find_includes(const LexedSource& src,
                                            const std::string& scrubbed) {
  std::vector<IncludeDirective> out;
  for (std::size_t line = 1; line <= src.line_starts.size(); ++line) {
    const std::size_t begin = src.line_starts[line - 1];
    const std::size_t end = line < src.line_starts.size()
                                ? src.line_starts[line]
                                : scrubbed.size();
    // Directive shape checked on the scrubbed view: `#`, `include`, and the
    // opening delimiter must all be real code on this line.
    std::size_t i = begin;
    while (i < end && (scrubbed[i] == ' ' || scrubbed[i] == '\t')) ++i;
    if (i >= end || scrubbed[i] != '#') continue;
    ++i;
    while (i < end && (scrubbed[i] == ' ' || scrubbed[i] == '\t')) ++i;
    static constexpr std::string_view kInclude = "include";
    if (end - i < kInclude.size() ||
        std::string_view(scrubbed.data() + i, kInclude.size()) != kInclude) {
      continue;
    }
    i += kInclude.size();
    // From here on the raw text is authoritative: the scrub blanks the
    // quoted form (it is a string token), delimiter included.
    while (i < end && (src.text[i] == ' ' || src.text[i] == '\t')) ++i;
    if (i >= end) continue;
    const bool angled = src.text[i] == '<';
    const char open = angled ? '<' : '"';
    const char close = angled ? '>' : '"';
    if (src.text[i] != open) continue;
    ++i;
    std::string target;
    while (i < end && src.text[i] != close && src.text[i] != '\n') {
      target.push_back(src.text[i++]);
    }
    if (i < end && src.text[i] == close && !target.empty()) {
      out.push_back(IncludeDirective{line, std::move(target), angled});
    }
  }
  return out;
}

}  // namespace gorilla::lint
