// gorilla-lint v2 — the include-graph pass.
//
// Three checks over the project include graph plus the DOT artifact:
//
//   layer-break  an #include whose target sits in a higher-ranked layer
//                than the including file (the DESIGN §3f DAG). Same-rank
//                includes are allowed — net/ntp/dns are siblings, as are
//                core/scan/sim.
//   layer-cycle  a cycle among project files, or among layer directories,
//                in the graph of rank-legal edges. Rank-violating edges are
//                excluded: they are already layer-break findings (waived or
//                not), and counting them twice would make a justified
//                downward-interface waiver unsatisfiable.
//   DOT          the graph artifact: one cluster per layer, edges colored
//                by verdict (violations red, waived orange).
#include <algorithm>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "tools/lint/internal.h"

namespace gorilla::lint {

namespace {

/// Known layer directories, in rank order for the DOT clusters.
const std::vector<std::pair<std::string, int>>& layer_table() {
  static const std::vector<std::pair<std::string, int>> kTable = {
      {"util", 0},  {"net", 1},       {"ntp", 1},   {"dns", 1},
      {"core", 2},  {"scan", 2},      {"sim", 2},   {"study", 3},
      {"telemetry", 4}, {"bench", 5}, {"tools", 5}, {"tests", 5},
      {"examples", 5},
  };
  return kTable;
}

/// Splits a path on '/'.
std::vector<std::string> components(const std::string& path) {
  std::vector<std::string> out;
  std::string cur;
  for (const char c : path) {
    if (c == '/') {
      if (!cur.empty()) out.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) out.push_back(cur);
  return out;
}

/// Resolves an include target to an index into `files`, or npos. Quoted
/// includes in this tree are rooted at src/ (e.g. "study/events.h"), so a
/// file whose path ends with "/<target>" — or equals it — is the match.
std::size_t resolve_include(const std::vector<SourceFile>& files,
                            const std::string& target) {
  for (std::size_t i = 0; i < files.size(); ++i) {
    const std::string& p = files[i].path;
    if (p == target) return i;
    if (p.size() > target.size() + 1 &&
        p.compare(p.size() - target.size(), target.size(), target) == 0 &&
        p[p.size() - target.size() - 1] == '/') {
      return i;
    }
  }
  return static_cast<std::size_t>(-1);
}

/// Tarjan-free cycle finder: DFS with colors; returns one representative
/// cycle path (node names) if the graph has any, else empty.
std::vector<std::string> find_cycle(
    const std::map<std::string, std::set<std::string>>& adj) {
  std::map<std::string, int> color;  // 0 white, 1 gray, 2 black
  std::vector<std::string> stack;
  std::vector<std::string> cycle;
  // One shared empty edge set: a leaf's begin() and end() must come from
  // the same container for the exhaustion check below to be valid.
  static const std::set<std::string> kNoEdges;
  const auto edges_of =
      [&adj](const std::string& n) -> const std::set<std::string>& {
    const auto it = adj.find(n);
    return it != adj.end() ? it->second : kNoEdges;
  };

  struct Frame {
    std::string node;
    std::set<std::string>::const_iterator next;
  };
  for (const auto& [start, _] : adj) {
    if (color[start] != 0) continue;
    std::vector<Frame> frames;
    const auto push = [&](const std::string& n) {
      color[n] = 1;
      stack.push_back(n);
      frames.push_back(Frame{n, edges_of(n).begin()});
    };
    push(start);
    while (!frames.empty() && cycle.empty()) {
      Frame& fr = frames.back();
      const auto& edges = edges_of(fr.node);
      if (fr.next == edges.end()) {
        color[fr.node] = 2;
        stack.pop_back();
        frames.pop_back();
        continue;
      }
      const std::string succ = *fr.next++;
      if (color[succ] == 1) {
        // Found: slice the gray stack from succ to the top.
        const auto at = std::find(stack.begin(), stack.end(), succ);
        cycle.assign(at, stack.end());
        cycle.push_back(succ);
      } else if (color[succ] == 0) {
        push(succ);
      }
    }
    if (!cycle.empty()) break;
  }
  return cycle;
}

std::string join(const std::vector<std::string>& parts,
                 const std::string& sep) {
  std::string out;
  for (const auto& p : parts) {
    if (!out.empty()) out += sep;
    out += p;
  }
  return out;
}

}  // namespace

int layer_rank(const std::string& layer) {
  for (const auto& [name, rank] : layer_table()) {
    if (name == layer) return rank;
  }
  return -1;
}

std::string file_layer(const SourceFile& f) {
  if (!f.summary.directives.layer.empty()) return f.summary.directives.layer;
  const std::vector<std::string> parts = components(f.path);
  // Last directory component naming a known layer wins, so both
  // "src/sim/attack.cpp" and "/abs/path/repo/src/sim/attack.cpp" map to
  // sim (and "tools/lint/lexer.cpp" to lint's parent, tools).
  for (std::size_t i = parts.size(); i-- > 1;) {
    if (layer_rank(parts[i - 1]) >= 0) return parts[i - 1];
  }
  return {};
}

std::string include_layer(const std::string& target) {
  const std::vector<std::string> parts = components(target);
  if (!parts.empty() && layer_rank(parts[0]) >= 0) return parts[0];
  return {};
}

std::string run_graph_pass(std::vector<SourceFile>& files,
                           std::vector<Finding>& findings) {
  struct Edge {
    std::size_t from_file;
    std::size_t line;
    std::string target;      ///< include text
    std::string from_layer;
    std::string to_layer;
    bool violation = false;  ///< upward under the DAG
    bool waived = false;
  };
  std::vector<Edge> edges;

  for (std::size_t fi = 0; fi < files.size(); ++fi) {
    SourceFile& f = files[fi];
    const std::string from = file_layer(f);
    const int from_rank = layer_rank(from);
    for (const IncludeDirective& inc : f.summary.includes) {
      if (inc.angled) continue;  // system/stdlib headers are out of scope
      const std::string to = include_layer(inc.target);
      if (to.empty()) continue;  // not a project-layer include
      Edge e{fi, inc.line, inc.target, from, to, false, false};
      const int to_rank = layer_rank(to);
      if (from_rank >= 0 && to_rank > from_rank) {
        e.violation = true;
        const auto key = std::make_pair(inc.line, std::string("layer-break"));
        const auto wit = f.summary.waivers.find(inc.line);
        if (wit != f.summary.waivers.end() &&
            wit->second.count("layer-break") != 0) {
          e.waived = true;
          f.graph_used_waivers.insert(key);
        } else {
          findings.push_back(Finding{
              f.path, inc.line, "layer-break",
              "include of '" + inc.target + "' reaches up from layer '" +
                  from + "' to '" + to + "'; the DAG is " + kLayerDag,
              std::string(f.lex.line_text(inc.line))});
        }
      }
      edges.push_back(std::move(e));
    }
  }

  // Cycle graphs over rank-legal edges only (violations are layer-break
  // findings already; see the header comment).
  std::map<std::string, std::set<std::string>> file_adj;
  std::map<std::string, std::set<std::string>> dir_adj;
  for (const Edge& e : edges) {
    if (e.violation) continue;
    const std::size_t ti = resolve_include(files, e.target);
    if (ti == static_cast<std::size_t>(-1)) continue;
    // A self-include lands as a self-edge, which the DFS reports as a
    // 1-cycle via the gray->gray back edge.
    file_adj[files[e.from_file].path].insert(files[ti].path);
    if (!e.from_layer.empty() && !e.to_layer.empty() &&
        e.from_layer != e.to_layer) {
      dir_adj[e.from_layer].insert(e.to_layer);
    }
  }
  // A self-include needs the self-edge to surface as a cycle; the general
  // DFS treats gray->gray as a back edge, which covers it too.
  const std::vector<std::string> file_cycle = find_cycle(file_adj);
  if (!file_cycle.empty()) {
    // Attribute the finding to the first file on the cycle, at the include
    // that participates.
    const std::string& culprit = file_cycle.front();
    for (std::size_t fi = 0; fi < files.size(); ++fi) {
      if (files[fi].path != culprit) continue;
      SourceFile& f = files[fi];
      std::size_t line = 1;
      for (const IncludeDirective& inc : f.summary.includes) {
        const std::size_t ti = resolve_include(files, inc.target);
        if (ti != static_cast<std::size_t>(-1) &&
            files[ti].path == file_cycle[1 % file_cycle.size()]) {
          line = inc.line;
          break;
        }
      }
      const auto wit = f.summary.waivers.find(line);
      if (wit != f.summary.waivers.end() &&
          wit->second.count("layer-cycle") != 0) {
        f.graph_used_waivers.insert({line, "layer-cycle"});
      } else {
        findings.push_back(Finding{
            f.path, line, "layer-cycle",
            "include cycle among project files: " + join(file_cycle, " -> "),
            std::string(f.lex.line_text(line))});
      }
      break;
    }
  }
  const std::vector<std::string> dir_cycle = find_cycle(dir_adj);
  if (!dir_cycle.empty() && file_cycle.empty()) {
    // Directory-level cycle with no single-file witness: report on the
    // first edge of the cycle we can find.
    for (const Edge& e : edges) {
      if (e.violation || e.from_layer != dir_cycle.front() ||
          e.to_layer != dir_cycle[1 % dir_cycle.size()]) {
        continue;
      }
      SourceFile& f = files[e.from_file];
      const auto wit = f.summary.waivers.find(e.line);
      if (wit != f.summary.waivers.end() &&
          wit->second.count("layer-cycle") != 0) {
        f.graph_used_waivers.insert({e.line, "layer-cycle"});
      } else {
        findings.push_back(Finding{
            f.path, e.line, "layer-cycle",
            "include cycle among layer directories: " +
                join(dir_cycle, " -> "),
            std::string(f.lex.line_text(e.line))});
      }
      break;
    }
  }

  // DOT artifact: one cluster per layer present, edges deduplicated at
  // layer granularity, colored by verdict.
  std::ostringstream dot;
  dot << "// gorilla-lint include-graph artifact\n";
  dot << "// layer DAG: " << kLayerDag << "\n";
  dot << "digraph layers {\n  rankdir=BT;\n  node [shape=box];\n";
  std::set<std::string> present;
  for (const Edge& e : edges) {
    if (!e.from_layer.empty()) present.insert(e.from_layer);
    if (!e.to_layer.empty()) present.insert(e.to_layer);
  }
  for (const auto& [name, rank] : layer_table()) {
    if (present.count(name) == 0) continue;
    dot << "  \"" << name << "\" [label=\"" << name << " (rank " << rank
        << ")\"];\n";
  }
  struct LayerEdge {
    bool violation = false;
    bool waived = false;
    std::size_t count = 0;
  };
  std::map<std::pair<std::string, std::string>, LayerEdge> layer_edges;
  for (const Edge& e : edges) {
    if (e.from_layer.empty() || e.to_layer.empty() ||
        e.from_layer == e.to_layer) {
      continue;
    }
    LayerEdge& le = layer_edges[{e.from_layer, e.to_layer}];
    ++le.count;
    le.violation = le.violation || (e.violation && !e.waived);
    le.waived = le.waived || (e.violation && e.waived);
  }
  for (const auto& [key, le] : layer_edges) {
    dot << "  \"" << key.first << "\" -> \"" << key.second << "\" [label=\""
        << le.count << "\"";
    if (le.violation) {
      dot << ", color=red, penwidth=2";
    } else if (le.waived) {
      dot << ", color=orange, style=dashed";
    }
    dot << "];\n";
  }
  dot << "}\n";
  return dot.str();
}

void run_stale_waiver_pass(std::vector<SourceFile>& files,
                           std::vector<Finding>& findings) {
  for (SourceFile& f : files) {
    for (const auto& [line, rules] : f.summary.waivers) {
      for (const std::string& rule : rules) {
        const std::pair<std::size_t, std::string> key{line, rule};
        if (f.results.used_waivers.count(key) != 0) continue;
        if (f.graph_used_waivers.count(key) != 0) continue;
        if (rule == "stale-waiver") continue;  // cannot waive the meta-rule
        findings.push_back(Finding{
            f.path, line, "stale-waiver",
            "NOLINT(" + rule +
                ") suppresses nothing; the code it excused is gone — delete "
                "the waiver or restore its justification",
            std::string(f.lex.line_text(line))});
      }
    }
  }
}

}  // namespace gorilla::lint
