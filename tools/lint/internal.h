// Shared internals of the gorilla-lint analysis passes (not installed API).
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "tools/lint/lexer.h"
#include "tools/lint/lint.h"

namespace gorilla::lint {

/// FNV-1a 64-bit — the content/context hash the file cache is keyed on.
inline std::uint64_t fnv1a(std::string_view data,
                           std::uint64_t h = 0xcbf29ce484222325ULL) {
  for (const char c : data) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// Self-test / fixture directives read from comments:
///   LINT-LAYER: <name>     assigns a layer to a file outside src/<layer>/
///   LINT-EXPECT[<rule>]    exact-match expectation used by --self-test
///   LINT-COMPACT           marks a struct/class as a compact (flat-storage)
///                          type; heavy-node-container rejects node-based
///                          std containers among its members
struct FileDirectives {
  std::string layer;
  std::vector<std::pair<std::size_t, std::string>> expects;  // (line, rule)
  std::vector<std::size_t> compact_marks;  ///< lines with a compact-type mark
};

/// Context-free per-file facts; cacheable keyed on the content hash alone.
struct FileSummary {
  std::vector<std::string> unordered_names;  ///< declared unordered_{map,set}s
  std::vector<IncludeDirective> includes;
  std::map<std::size_t, std::set<std::string>> waivers;  ///< line -> rules
  FileDirectives directives;
};

/// Per-file rule output; cacheable keyed on (content hash, context hash).
struct FileResults {
  std::vector<Finding> findings;  ///< post-waiver single-file findings
  std::set<std::pair<std::size_t, std::string>> used_waivers;
};

/// One document moving through the pipeline.
struct SourceFile {
  std::string path;
  std::string raw;
  std::uint64_t content_hash = 0;
  bool lexed = false;
  LexedSource lex;
  std::string scrubbed;
  FileSummary summary;
  FileResults results;
  /// Waivers consumed by the cross-file passes (layer-break, layer-cycle);
  /// recomputed every run, merged with results.used_waivers for stale-waiver.
  std::set<std::pair<std::size_t, std::string>> graph_used_waivers;
  bool summary_from_cache = false;
  bool results_from_cache = false;
};

/// Ensures `f.lex`/`f.scrubbed` are populated (idempotent).
void ensure_lexed(SourceFile& f);

/// Builds FileSummary from the lexed source (waivers, directives, includes,
/// unordered-container names).
void build_summary(SourceFile& f);

/// Runs every single-file rule plus unordered-iter against the global
/// container-name set; fills f.results.
void run_file_rules(SourceFile& f, const std::set<std::string>& unordered_names);

/// The include-graph pass: per-include layer-DAG rank checks, file-level
/// and directory-level cycle rejection, and the DOT artifact. Appends
/// findings (already waiver-filtered; usage recorded in
/// graph_used_waivers) and returns the DOT text.
std::string run_graph_pass(std::vector<SourceFile>& files,
                           std::vector<Finding>& findings);

/// stale-waiver: every (line, rule) waiver no pass consumed.
void run_stale_waiver_pass(std::vector<SourceFile>& files,
                           std::vector<Finding>& findings);

/// Layer rank per the DESIGN §3f DAG:
///   util(0) -> net,ntp,dns(1) -> core,scan,sim(2) -> study(3)
///   -> telemetry(4) -> bench,tools,tests,examples(5).
/// Returns -1 for unknown names.
int layer_rank(const std::string& layer);

/// Layer of a file: LINT-LAYER directive if present, else the last path
/// component that names a known layer. Empty if none.
std::string file_layer(const SourceFile& f);

/// Layer of an include target: its first path component when that names a
/// known layer (quoted includes in this tree are rooted at src/).
std::string include_layer(const std::string& target);

/// Human-readable DAG, used in finding messages and docs.
inline constexpr const char* kLayerDag =
    "util -> {net,ntp,dns} -> {core,scan,sim} -> study -> telemetry -> "
    "bench/tools";

}  // namespace gorilla::lint
